#include "cluster/cluster.h"

#include <algorithm>
#include <limits>

#include "common/expect.h"

namespace rejuv::cluster {

void validate(const ClusterConfig& config) {
  REJUV_EXPECT(config.hosts >= 1, "cluster needs at least one host");
  REJUV_EXPECT(config.total_arrival_rate > 0.0, "total arrival rate must be positive");
  model::EcommerceConfig host = config.host_config;
  host.arrival_rate = config.total_arrival_rate / static_cast<double>(config.hosts);
  model::validate(host);
}

Cluster::Cluster(sim::Simulator& simulator, ClusterConfig config,
                 const DetectorFactory& make_detector, std::uint64_t seed)
    : simulator_(simulator),
      config_(config),
      balancer_rng_(seed, /*stream_id=*/0),
      arrival_process_(
          std::make_unique<workload::PoissonProcess>(config.total_arrival_rate)) {
  validate(config_);
  model::EcommerceConfig host_config = config_.host_config;
  // The per-host config's own arrival rate is irrelevant (arrivals are
  // injected by the balancer) but must be valid.
  host_config.arrival_rate = config_.total_arrival_rate / static_cast<double>(config_.hosts);

  hosts_.reserve(config_.hosts);
  for (std::size_t h = 0; h < config_.hosts; ++h) {
    Host host;
    host.arrival_rng = std::make_unique<common::RngStream>(seed, 2 * h + 1);
    host.service_rng = std::make_unique<common::RngStream>(seed, 2 * h + 2);
    host.system = std::make_unique<model::EcommerceSystem>(simulator_, host_config,
                                                           *host.arrival_rng, *host.service_rng);
    host.controller = std::make_unique<core::RejuvenationController>(make_detector());
    hosts_.push_back(std::move(host));
  }
  // Wire each host's decision path through the cluster coordinator. The
  // index capture is safe: hosts_ never reallocates after construction.
  for (std::size_t h = 0; h < hosts_.size(); ++h) {
    hosts_[h].system->set_decision([this, h](double rt) {
      if (!hosts_[h].controller->observe(rt)) return false;
      return on_detector_fire(h);
    });
  }
}

void Cluster::set_arrival_process(std::unique_ptr<workload::ArrivalProcess> process) {
  REJUV_EXPECT(process != nullptr, "arrival process must not be null");
  REJUV_EXPECT(offered_ == 0 && arrivals_to_generate_ == 0,
               "arrival process must be set before the run starts");
  arrival_process_ = std::move(process);
}

void Cluster::run_transactions(std::uint64_t count) {
  REJUV_EXPECT(count >= 1, "need at least one transaction");
  REJUV_EXPECT(offered_ == 0, "Cluster instances are single-run");
  arrivals_to_generate_ = count;
  schedule_next_arrival();
  simulator_.run();
  const ClusterMetrics aggregate = metrics();
  REJUV_ASSERT(aggregate.completed + aggregate.lost_on_hosts + aggregate.lost_all_down == count,
               "cluster transaction conservation violated");
}

void Cluster::schedule_next_arrival() {
  if (arrivals_to_generate_ == 0) return;
  --arrivals_to_generate_;
  simulator_.schedule_after(
      arrival_process_->next_interarrival(balancer_rng_, simulator_.now()),
      [this] { on_arrival(); });
}

void Cluster::on_arrival() {
  ++offered_;
  schedule_next_arrival();
  const std::size_t host = pick_host();
  if (host == hosts_.size()) {
    ++lost_all_down_;
    return;
  }
  ++hosts_[host].routed;
  hosts_[host].system->submit_transaction();
}

std::size_t Cluster::pick_host() {
  auto eligible = [this](std::size_t h) {
    return !config_.route_around_down_hosts || !hosts_[h].system->down();
  };
  switch (config_.routing) {
    case RoutingPolicy::kRoundRobin: {
      for (std::size_t step = 0; step < hosts_.size(); ++step) {
        const std::size_t h = (round_robin_next_ + step) % hosts_.size();
        if (eligible(h)) {
          round_robin_next_ = (h + 1) % hosts_.size();
          return h;
        }
      }
      return hosts_.size();
    }
    case RoutingPolicy::kRandom: {
      std::vector<std::size_t> candidates;
      candidates.reserve(hosts_.size());
      for (std::size_t h = 0; h < hosts_.size(); ++h) {
        if (eligible(h)) candidates.push_back(h);
      }
      if (candidates.empty()) return hosts_.size();
      return candidates[static_cast<std::size_t>(balancer_rng_.uniform01() *
                                                 static_cast<double>(candidates.size()))];
    }
    case RoutingPolicy::kLeastLoaded: {
      std::size_t best = hosts_.size();
      std::size_t best_load = std::numeric_limits<std::size_t>::max();
      for (std::size_t h = 0; h < hosts_.size(); ++h) {
        if (!eligible(h)) continue;
        const std::size_t load = hosts_[h].system->threads_in_system();
        if (load < best_load) {
          best_load = load;
          best = h;
        }
      }
      return best;
    }
  }
  REJUV_ASSERT(false, "unhandled routing policy");
  return hosts_.size();
}

bool Cluster::on_detector_fire(std::size_t host) {
  if (config_.strategy == RejuvenationStrategy::kIndependent || down_hosts_ == 0) {
    begin_restore();
    return true;  // the host rejuvenates itself now
  }
  // Rolling strategy with a restore already in progress: defer.
  if (!hosts_[host].rejuvenation_pending) {
    hosts_[host].rejuvenation_pending = true;
    ++deferred_;
  }
  return false;
}

void Cluster::begin_restore() {
  const double downtime = config_.host_config.rejuvenation_downtime_seconds;
  if (downtime <= 0.0) return;  // instantaneous: nothing to coordinate
  ++down_hosts_;
  simulator_.schedule_after(downtime, [this] { finish_restore(); });
}

void Cluster::finish_restore() {
  REJUV_ASSERT(down_hosts_ > 0, "restore finished with no host down");
  --down_hosts_;
  if (config_.strategy != RejuvenationStrategy::kRolling || down_hosts_ > 0) return;
  // Execute the oldest deferred trigger, if any host is still waiting.
  for (Host& host : hosts_) {
    if (!host.rejuvenation_pending) continue;
    host.rejuvenation_pending = false;
    host.controller->notify_external_rejuvenation();
    host.system->force_rejuvenation();
    begin_restore();
    break;
  }
}

ClusterMetrics Cluster::metrics() const {
  ClusterMetrics aggregate;
  aggregate.offered = offered_;
  aggregate.lost_all_down = lost_all_down_;
  aggregate.deferred_rejuvenations = deferred_;
  for (const Host& host : hosts_) {
    const model::EcommerceMetrics& m = host.system->metrics();
    aggregate.completed += m.completed;
    aggregate.lost_on_hosts += m.lost();
    aggregate.rejuvenations += m.rejuvenation_count;
    aggregate.gc_count += m.gc_count;
    aggregate.response_time.merge(m.response_time);
  }
  return aggregate;
}

const model::EcommerceMetrics& Cluster::host_metrics(std::size_t host) const {
  REJUV_EXPECT(host < hosts_.size(), "host index out of range");
  return hosts_[host].system->metrics();
}

const core::RejuvenationController& Cluster::host_controller(std::size_t host) const {
  REJUV_EXPECT(host < hosts_.size(), "host index out of range");
  return *hosts_[host].controller;
}

std::uint64_t Cluster::routed_to(std::size_t host) const {
  REJUV_EXPECT(host < hosts_.size(), "host index out of range");
  return hosts_[host].routed;
}

}  // namespace rejuv::cluster
