#include "cluster/cluster.h"

#include <algorithm>
#include <limits>

#include "common/expect.h"

namespace rejuv::cluster {

void validate(const ClusterConfig& config) {
  REJUV_EXPECT(config.hosts >= 1, "cluster needs at least one host");
  REJUV_EXPECT(config.total_arrival_rate > 0.0, "total arrival rate must be positive");
  REJUV_EXPECT(config.max_capacity_loss_fraction >= 0.0 &&
                   config.max_capacity_loss_fraction <= 1.0,
               "capacity loss fraction must be in [0, 1]");
  REJUV_EXPECT(config.checkpoint_every_observations != 0 || config.checkpoint_journal_path.empty(),
               "a checkpoint journal needs a checkpoint cadence");
  REJUV_EXPECT(config.max_hosts_down <= config.hosts,
               "capacity budget cannot exceed the host count");
  model::EcommerceConfig host = config.host_config;
  host.arrival_rate = config.total_arrival_rate / static_cast<double>(config.hosts);
  host.rejuvenation_downtime_seconds = 0.0;  // downtime is the coordinator's
  model::validate(host);
  // Parse eagerly so a bad plan string fails here, with its own message,
  // and let the coordinator config validate itself.
  faults::FaultPlan::parse(config.node_fault_plan);
  coordinator_config(config);
}

CoordinatorConfig coordinator_config(const ClusterConfig& config) {
  CoordinatorConfig resolved;
  resolved.strategy = config.strategy;
  resolved.hosts = config.hosts;
  resolved.max_hosts_down = config.max_hosts_down;
  if (resolved.max_hosts_down == 0 && config.max_capacity_loss_fraction > 0.0) {
    resolved.max_hosts_down = std::max<std::size_t>(
        1, static_cast<std::size_t>(config.max_capacity_loss_fraction *
                                    static_cast<double>(config.hosts)));
  }
  resolved.downtime_seconds = config.host_config.rejuvenation_downtime_seconds;
  resolved.restore_deadline_seconds = config.restore_deadline_seconds;
  resolved.crash_repair_seconds = config.crash_repair_seconds;
  resolved.backoff_base_seconds = config.backoff_base_seconds;
  resolved.backoff_cap_seconds = config.backoff_cap_seconds;
  resolved.backoff_jitter = config.backoff_jitter;
  resolved.inflight_threshold =
      config.inflight_threshold != 0
          ? config.inflight_threshold
          : std::max<std::size_t>(1, config.hosts * config.host_config.cpus / 2);
  resolved.max_defer_seconds = config.max_defer_seconds;
  resolved.rearm_seconds = config.rearm_seconds;
  return resolved;
}

namespace {

/// The hosts run with zero internal downtime: the coordinator owns the
/// restore window, and a "down" host is simply one the balancer is told
/// about, so the model's own downtime machinery must stay out of the way.
model::EcommerceConfig host_system_config(const ClusterConfig& config) {
  model::EcommerceConfig host = config.host_config;
  host.arrival_rate = config.total_arrival_rate / static_cast<double>(config.hosts);
  host.rejuvenation_downtime_seconds = 0.0;
  return host;
}

}  // namespace

Cluster::Cluster(sim::Simulator& simulator, ClusterConfig config,
                 const DetectorFactory& make_detector, std::uint64_t seed)
    : simulator_(simulator),
      config_(std::move(config)),
      make_detector_(make_detector),
      seed_(seed),
      balancer_rng_(seed, /*stream_id=*/0),
      coordinator_(
          simulator, coordinator_config(config_), faults::FaultPlan::parse(config_.node_fault_plan),
          seed,
          CoordinatorHooks{
              .execute_rejuvenation =
                  [this](std::size_t host) {
                    Host& h = hosts_[host];
                    h.controller->notify_external_rejuvenation();
                    if (config_.checkpoint_every_observations != 0) save_checkpoint(host);
                    h.system->force_rejuvenation();
                  },
              .on_crash =
                  [this](std::size_t host) {
                    if (config_.keep_state_on_crash) return;
                    // Process death: the detector state is gone. A fresh
                    // controller takes over; repair may re-seed it from the
                    // last checkpoint.
                    Host& h = hosts_[host];
                    h.controller =
                        std::make_unique<core::RejuvenationController>(make_detector_());
                    h.controller->set_tracer(h.tracer.enabled() ? &h.tracer : nullptr);
                    if (registry_ != nullptr) h.controller->set_metrics(registry_);
                  },
              .on_repair =
                  [this](std::size_t host) {
                    Host& h = hosts_[host];
                    if (!config_.restore_on_repair || h.last_checkpoint.empty()) return;
                    const auto record = monitor::parse_checkpoint_line(h.last_checkpoint);
                    if (!record) return;
                    if (!config_.keep_state_on_crash) {
                      h.controller->restore_state(record->controller);
                      ++checkpoints_restored_;
                    }
                    // Emitted in keep-state runs too, so a wipe-and-restore
                    // run's trace is byte-identical to a state-survived one.
                    h.tracer.checkpoint_restored(static_cast<std::uint32_t>(host),
                                                 record->controller.observations);
                  },
              .escalation =
                  [this](std::size_t host) {
                    return hosts_[host].controller->detector_snapshot().bucket;
                  },
              .cluster_inflight = [this] { return cluster_inflight(); },
          }) {
  validate(config_);
  arrival_process_ = std::make_unique<workload::PoissonProcess>(config_.total_arrival_rate);
  const model::EcommerceConfig host_config = host_system_config(config_);

  hosts_.reserve(config_.hosts);
  for (std::size_t h = 0; h < config_.hosts; ++h) {
    Host host;
    host.arrival_rng = std::make_unique<common::RngStream>(seed, 2 * h + 1);
    host.service_rng = std::make_unique<common::RngStream>(seed, 2 * h + 2);
    host.system = std::make_unique<model::EcommerceSystem>(simulator_, host_config,
                                                           *host.arrival_rng, *host.service_rng);
    host.controller = std::make_unique<core::RejuvenationController>(make_detector_());
    hosts_.push_back(std::move(host));
  }
  if (!config_.checkpoint_journal_path.empty()) {
    journal_ = std::make_unique<monitor::CheckpointWriter>(config_.checkpoint_journal_path);
  }
  // Wire each host's decision path through the coordinator. The index
  // capture is safe: hosts_ never reallocates after construction.
  for (std::size_t h = 0; h < hosts_.size(); ++h) {
    hosts_[h].system->set_decision(
        [this, h](double rt) { return on_host_decision(h, rt); });
  }
}

void Cluster::set_arrival_process(std::unique_ptr<workload::ArrivalProcess> process) {
  REJUV_EXPECT(process != nullptr, "arrival process must not be null");
  REJUV_EXPECT(offered_ == 0 && arrivals_to_generate_ == 0,
               "arrival process must be set before the run starts");
  arrival_process_ = std::move(process);
}

void Cluster::set_instrumentation(obs::TraceSink* sink, obs::MetricsRegistry* registry) {
  REJUV_EXPECT(offered_ == 0, "instrumentation must be attached before the run starts");
  registry_ = registry;
  for (std::size_t h = 0; h < hosts_.size(); ++h) {
    Host& host = hosts_[h];
    host.tracer.set_sink(sink);
    host.tracer.set_run(config_.total_arrival_rate, static_cast<std::uint32_t>(h));
    host.system->set_tracer(sink != nullptr ? &host.tracer : nullptr);
    host.controller->set_tracer(sink != nullptr ? &host.tracer : nullptr);
    if (registry != nullptr) {
      host.system->set_metrics(registry);
      host.controller->set_metrics(registry);
    }
  }
  cluster_tracer_.set_sink(sink);
  cluster_tracer_.set_run(config_.total_arrival_rate, static_cast<std::uint32_t>(hosts_.size()));
  coordinator_.set_tracer(sink != nullptr ? &cluster_tracer_ : nullptr);
}

void Cluster::run_transactions(std::uint64_t count) {
  REJUV_EXPECT(count >= 1, "need at least one transaction");
  REJUV_EXPECT(offered_ == 0, "Cluster instances are single-run");
  for (std::size_t h = 0; h < hosts_.size(); ++h) {
    hosts_[h].tracer.run_start("cluster-host", config_.total_arrival_rate,
                               static_cast<std::uint32_t>(h), seed_);
  }
  arrivals_to_generate_ = count;
  schedule_next_arrival();
  simulator_.run();
  const ClusterMetrics aggregate = metrics();
  REJUV_ASSERT(aggregate.completed + aggregate.lost_on_hosts + aggregate.lost_all_down +
                       aggregate.lost_to_down_host ==
                   count,
               "cluster transaction conservation violated");
  REJUV_ASSERT(coordinator_.pending_count() == 0,
               "run ended with starved rejuvenation triggers still queued");
  for (std::size_t h = 0; h < hosts_.size(); ++h) {
    hosts_[h].tracer.run_end(hosts_[h].system->metrics().completed);
  }
  cluster_tracer_.flush();
  if (!hosts_.empty()) hosts_.front().tracer.flush();
  if (registry_ != nullptr) publish_metrics(*registry_);
}

void Cluster::schedule_next_arrival() {
  if (arrivals_to_generate_ == 0) return;
  --arrivals_to_generate_;
  simulator_.schedule_after(
      arrival_process_->next_interarrival(balancer_rng_, simulator_.now()),
      [this] { on_arrival(); });
}

void Cluster::on_arrival() {
  ++offered_;
  schedule_next_arrival();
  const std::size_t host = pick_host();
  if (host == hosts_.size()) {
    // Every host is down (or no host is eligible): the transaction is an
    // error page, accounted as cluster-level loss.
    ++lost_all_down_;
    return;
  }
  if (!coordinator_.host_up(host)) {
    // Oblivious balancer: the share sprayed at a down host is lost.
    ++lost_to_down_host_;
    return;
  }
  ++hosts_[host].routed;
  hosts_[host].system->submit_transaction();
}

std::size_t Cluster::pick_host() {
  auto eligible = [this](std::size_t h) {
    return !config_.route_around_down_hosts || coordinator_.host_up(h);
  };
  switch (config_.routing) {
    case RoutingPolicy::kRoundRobin: {
      for (std::size_t step = 0; step < hosts_.size(); ++step) {
        const std::size_t h = (round_robin_next_ + step) % hosts_.size();
        if (eligible(h)) {
          round_robin_next_ = (h + 1) % hosts_.size();
          return h;
        }
      }
      return hosts_.size();
    }
    case RoutingPolicy::kRandom: {
      std::vector<std::size_t> candidates;
      candidates.reserve(hosts_.size());
      for (std::size_t h = 0; h < hosts_.size(); ++h) {
        if (eligible(h)) candidates.push_back(h);
      }
      if (candidates.empty()) return hosts_.size();
      return candidates[static_cast<std::size_t>(balancer_rng_.uniform01() *
                                                 static_cast<double>(candidates.size()))];
    }
    case RoutingPolicy::kLeastLoaded: {
      std::size_t best = hosts_.size();
      std::size_t best_load = std::numeric_limits<std::size_t>::max();
      for (std::size_t h = 0; h < hosts_.size(); ++h) {
        if (!eligible(h)) continue;
        const std::size_t load = hosts_[h].system->threads_in_system();
        if (load < best_load) {
          best_load = load;
          best = h;
        }
      }
      return best;
    }
  }
  REJUV_ASSERT(false, "unhandled routing policy");
  return hosts_.size();
}

bool Cluster::on_host_decision(std::size_t host, double response_time) {
  Host& h = hosts_[host];
  const bool false_fire = coordinator_.note_transaction(host);
  const bool real_fire = h.controller->observe(response_time);
  ++h.observations;
  const std::uint64_t every = config_.checkpoint_every_observations;
  if (every != 0 && h.observations % every == 0) save_checkpoint(host);
  if (real_fire) return coordinator_.on_trigger(host);
  if (false_fire) {
    if (!coordinator_.on_trigger(host)) return false;
    // An injected trigger executing immediately resets the detector the
    // same way an operator-forced rejuvenation would.
    h.controller->notify_external_rejuvenation();
    if (every != 0) save_checkpoint(host);
    return true;
  }
  return false;
}

void Cluster::save_checkpoint(std::size_t host) {
  Host& h = hosts_[host];
  monitor::ShardCheckpoint record;
  record.spec = h.controller->detector().name();
  record.shard = static_cast<std::uint32_t>(host);
  record.shard_count = static_cast<std::uint32_t>(hosts_.size());
  record.controller = h.controller->save_state();
  h.last_checkpoint = monitor::to_json(record);
  ++checkpoints_saved_;
  h.tracer.checkpoint_saved(static_cast<std::uint32_t>(host), record.controller.observations);
  if (journal_ != nullptr) journal_->append(record);
}

std::size_t Cluster::cluster_inflight() const {
  std::size_t inflight = 0;
  for (const Host& host : hosts_) inflight += host.system->threads_in_system();
  return inflight;
}

ClusterMetrics Cluster::metrics() const {
  ClusterMetrics aggregate;
  aggregate.offered = offered_;
  aggregate.lost_all_down = lost_all_down_;
  aggregate.lost_to_down_host = lost_to_down_host_;
  const CoordinatorStats& stats = coordinator_.stats();
  aggregate.deferred_rejuvenations = stats.deferred;
  aggregate.crashes = stats.crashes;
  aggregate.hangs = stats.hangs;
  aggregate.retries = stats.retries;
  aggregate.repairs = stats.repairs;
  aggregate.false_triggers = stats.false_triggers;
  aggregate.max_hosts_down = stats.max_hosts_down;
  aggregate.checkpoints_saved = checkpoints_saved_;
  aggregate.checkpoints_restored = checkpoints_restored_;
  for (const Host& host : hosts_) {
    const model::EcommerceMetrics& m = host.system->metrics();
    aggregate.completed += m.completed;
    aggregate.lost_on_hosts += m.lost();
    aggregate.rejuvenations += m.rejuvenation_count;
    aggregate.gc_count += m.gc_count;
    aggregate.response_time.merge(m.response_time);
  }
  return aggregate;
}

void Cluster::publish_metrics(obs::MetricsRegistry& registry) const {
  const ClusterMetrics m = metrics();
  registry.counter("cluster.offered").increment(m.offered);
  registry.counter("cluster.lost_all_down").increment(m.lost_all_down);
  registry.counter("cluster.lost_to_down_host").increment(m.lost_to_down_host);
  registry.counter("cluster.deferred").increment(m.deferred_rejuvenations);
  registry.counter("cluster.restores").increment(coordinator_.stats().restores_started);
  registry.counter("cluster.crashes").increment(m.crashes);
  registry.counter("cluster.hangs").increment(m.hangs);
  registry.counter("cluster.retries").increment(m.retries);
  registry.counter("cluster.repairs").increment(m.repairs);
  registry.counter("cluster.false_triggers").increment(m.false_triggers);
  registry.counter("cluster.checkpoints_saved").increment(m.checkpoints_saved);
  registry.counter("cluster.checkpoints_restored").increment(m.checkpoints_restored);
  registry.gauge("cluster.max_hosts_down").set(static_cast<double>(m.max_hosts_down));
}

const model::EcommerceMetrics& Cluster::host_metrics(std::size_t host) const {
  REJUV_EXPECT(host < hosts_.size(), "host index out of range");
  return hosts_[host].system->metrics();
}

const core::RejuvenationController& Cluster::host_controller(std::size_t host) const {
  REJUV_EXPECT(host < hosts_.size(), "host index out of range");
  return *hosts_[host].controller;
}

std::uint64_t Cluster::routed_to(std::size_t host) const {
  REJUV_EXPECT(host < hosts_.size(), "host index out of range");
  return hosts_[host].routed;
}

const std::string& Cluster::host_checkpoint(std::size_t host) const {
  REJUV_EXPECT(host < hosts_.size(), "host index out of range");
  return hosts_[host].last_checkpoint;
}

}  // namespace rejuv::cluster
