#include "model/ecommerce.h"

#include <cmath>
#include <vector>

#include "common/expect.h"
#include "sim/variates.h"

namespace rejuv::model {

void validate(const EcommerceConfig& config) {
  REJUV_EXPECT(config.arrival_rate > 0.0, "arrival rate must be positive");
  REJUV_EXPECT(config.service_rate > 0.0, "service rate must be positive");
  REJUV_EXPECT(config.cpus >= 1, "need at least one CPU");
  REJUV_EXPECT(config.overhead_factor >= 1.0, "overhead factor must be >= 1");
  REJUV_EXPECT(config.heap_mb > 0.0, "heap must be non-empty");
  REJUV_EXPECT(config.alloc_mb > 0.0, "allocation size must be positive");
  REJUV_EXPECT(config.alloc_mb <= config.heap_mb, "allocation exceeds heap");
  REJUV_EXPECT(config.gc_free_threshold_mb >= 0.0, "GC threshold must be non-negative");
  REJUV_EXPECT(config.gc_pause_seconds >= 0.0, "GC pause must be non-negative");
  REJUV_EXPECT(config.rejuvenation_downtime_seconds >= 0.0,
               "rejuvenation downtime must be non-negative");
}

EcommerceSystem::EcommerceSystem(sim::Simulator& simulator, EcommerceConfig config,
                                 common::RngStream& arrival_rng, common::RngStream& service_rng)
    : simulator_(simulator),
      config_(config),
      arrival_rng_(arrival_rng),
      service_rng_(service_rng),
      arrival_process_(std::make_unique<workload::PoissonProcess>(config.arrival_rate)) {
  validate(config_);
  queue_times_.resize(64);  // ring capacity; must stay a power of two
  running_.resize(config_.cpus);
  free_slots_.reserve(config_.cpus);
  reset_free_slots();
}

void EcommerceSystem::reset_free_slots() {
  free_slots_.clear();
  // Descending, so dispatch acquires slots 0, 1, 2, ... from a clean start.
  for (std::size_t i = config_.cpus; i > 0; --i) {
    free_slots_.push_back(static_cast<std::uint32_t>(i - 1));
  }
}

void EcommerceSystem::queue_push_back(double arrival_time) {
  if (queue_count_ == queue_times_.size()) {
    // Unwrap into a doubled buffer; from then on the new capacity is reused.
    std::vector<double> grown(queue_times_.size() * 2);
    for (std::size_t i = 0; i < queue_count_; ++i) {
      grown[i] = queue_times_[(queue_head_ + i) & (queue_times_.size() - 1)];
    }
    queue_times_ = std::move(grown);
    queue_head_ = 0;
  }
  queue_times_[(queue_head_ + queue_count_) & (queue_times_.size() - 1)] = arrival_time;
  ++queue_count_;
}

void EcommerceSystem::set_arrival_process(std::unique_ptr<workload::ArrivalProcess> process) {
  REJUV_EXPECT(process != nullptr, "arrival process must not be null");
  REJUV_EXPECT(metrics_.arrivals == 0 && arrivals_to_generate_ == 0,
               "arrival process must be set before the run starts");
  arrival_process_ = std::move(process);
}

void EcommerceSystem::run_transactions(std::uint64_t count) {
  REJUV_EXPECT(count >= 1, "need at least one transaction");
  REJUV_EXPECT(metrics_.arrivals == 0, "EcommerceSystem instances are single-run");
  arrivals_to_generate_ = count;
  schedule_next_arrival();
  if (periodic_rejuvenation_interval_ > 0.0) {
    simulator_.schedule_after(periodic_rejuvenation_interval_,
                              [this] { on_periodic_rejuvenation(); });
  }
  simulator_.run();
  REJUV_ASSERT(metrics_.completed + metrics_.lost() == count,
               "transaction conservation violated");
}

void EcommerceSystem::enable_periodic_rejuvenation(double interval_seconds) {
  REJUV_EXPECT(interval_seconds > 0.0, "rejuvenation interval must be positive");
  REJUV_EXPECT(metrics_.arrivals == 0 && arrivals_to_generate_ == 0,
               "periodic rejuvenation must be enabled before the run starts");
  periodic_rejuvenation_interval_ = interval_seconds;
}

void EcommerceSystem::on_periodic_rejuvenation() {
  // The tick chain ends once no further work can arrive, so the simulation
  // terminates; a tick landing inside a rejuvenation downtime is skipped
  // (the system is already clean).
  if (arrivals_to_generate_ == 0 && threads_in_system() == 0) return;
  if (!down_) rejuvenate();
  simulator_.schedule_after(periodic_rejuvenation_interval_,
                            [this] { on_periodic_rejuvenation(); });
}

void EcommerceSystem::schedule_next_arrival() {
  if (arrivals_to_generate_ == 0) return;
  --arrivals_to_generate_;
  simulator_.schedule_after(arrival_process_->next_interarrival(arrival_rng_, simulator_.now()),
                            [this] { on_arrival(); });
}

void EcommerceSystem::submit_transaction() {
  REJUV_EXPECT(arrivals_to_generate_ == 0, "cannot mix submitted and self-generated arrivals");
  admit_transaction();
}

void EcommerceSystem::on_arrival() {
  // Rule 1: count the arrival and chain the next one.
  schedule_next_arrival();
  admit_transaction();
}

void EcommerceSystem::admit_transaction() {
  ++metrics_.arrivals;
  if (config_.admission_limit > 0 && threads_in_system() >= config_.admission_limit) {
    ++metrics_.lost_to_admission;
    if (tracer_ != nullptr) {
      tracer_->set_time(simulator_.now());
      tracer_->admission_rejected(threads_in_system());
    }
    if (admission_counter_ != nullptr) admission_counter_->increment();
    return;
  }
  if (down_ && !config_.queue_arrivals_during_downtime) {
    // Transactions offered while capacity is being restored are lost; the
    // paper defines rejuvenation cost as exactly this kind of loss.
    ++metrics_.lost_to_downtime;
    if (tracer_ != nullptr) {
      tracer_->set_time(simulator_.now());
      tracer_->downtime_lost();
    }
    if (downtime_counter_ != nullptr) downtime_counter_->increment();
    return;
  }
  // Rule 2: FCFS queue for a CPU.
  queue_push_back(simulator_.now());
  try_dispatch();
}

void EcommerceSystem::try_dispatch() {
  // Dispatch is limited by CPUs and by the heap: an allocation that cannot
  // be satisfied waits for the in-progress GC to reclaim garbage. A GC does
  // not otherwise stop dispatch — §3 delays only the *running* threads — but
  // at high load all CPUs are held by those delayed threads, which is what
  // starves dispatch and builds the post-GC backlog.
  while (!down_ && busy_cpus_ < config_.cpus && queue_count_ > 0 &&
         (!config_.gc_enabled || free_heap_mb() >= config_.alloc_mb)) {
    const double arrival_time = queue_pop_front();

    // Rule 3 + 4: exponential processing time, doubled under kernel overhead.
    // The thread being dispatched still counts toward the concurrency level.
    // service_rate was validated positive at construction.
    double processing = sim::exponential_unchecked(service_rng_, config_.service_rate);
    const std::size_t concurrency = queue_count_ + busy_cpus_ + 1;
    if (config_.overhead_enabled && concurrency > config_.thread_overhead_threshold) {
      processing *= config_.overhead_factor;
    }

    // Rule 5: allocate heap on obtaining the CPU.
    account_usage();
    ++busy_cpus_;
    live_mb_ += config_.alloc_mb;

    const std::uint32_t slot = free_slots_.back();
    free_slots_.pop_back();
    const double completion_time = simulator_.now() + processing;
    RunningThread& thread = running_[slot];
    thread.arrival_time = arrival_time;
    thread.completion_time = completion_time;
    thread.completion_event =
        simulator_.schedule_at(completion_time, [this, slot] { on_completion(slot); });

    // Rule 6: a full GC is scheduled when the allocation leaves less free
    // heap than the threshold. A GC already in progress absorbs re-triggers.
    if (config_.gc_enabled && gc_end_event_ == sim::kNoEvent &&
        free_heap_mb() < config_.gc_free_threshold_mb) {
      start_gc();
    }
  }
  // A queue blocked on allocation with reclaimable garbage must also force a
  // collection: without it, once the running threads complete (their memory
  // stays garbage until a GC) nothing would ever trigger one and the queued
  // threads would be stranded. Only fires when there is garbage to reclaim,
  // so it cannot livelock on a heap held entirely by live allocations.
  if (config_.gc_enabled && gc_end_event_ == sim::kNoEvent && !down_ && queue_count_ > 0 &&
      busy_cpus_ < config_.cpus && free_heap_mb() < config_.alloc_mb && garbage_mb_ > 0.0) {
    start_gc();
  }
}

void EcommerceSystem::start_gc() {
  REJUV_ASSERT(gc_end_event_ == sim::kNoEvent, "GC triggered while one is in progress");
  ++metrics_.gc_count;
  if (tracer_ != nullptr) {
    tracer_->set_time(simulator_.now());
    tracer_->gc_start(free_heap_mb());
  }
  if (gc_counter_ != nullptr) gc_counter_->increment();
  // Every thread running at GC start is delayed by the full pause and keeps
  // holding its CPU meanwhile; threads dispatched onto free CPUs during the
  // pause are not delayed (§3 delays the running threads only).
  for (std::uint32_t slot = 0; slot < running_.size(); ++slot) {
    RunningThread& thread = running_[slot];
    if (thread.completion_event == sim::kNoEvent) continue;
    const bool cancelled = simulator_.cancel(thread.completion_event);
    REJUV_ASSERT(cancelled, "running thread lost its completion event");
    thread.completion_time += config_.gc_pause_seconds;
    thread.completion_event = simulator_.schedule_at(
        thread.completion_time, [this, slot] { on_completion(slot); });
  }
  gc_end_event_ =
      simulator_.schedule_after(config_.gc_pause_seconds, [this] { on_gc_end(); });
}

void EcommerceSystem::on_gc_end() {
  gc_end_event_ = sim::kNoEvent;
  account_usage();
  if (tracer_ != nullptr) {
    tracer_->set_time(simulator_.now());
    tracer_->gc_end(garbage_mb_);
  }
  garbage_mb_ = 0.0;  // all memory of completed transactions is reclaimed
  try_dispatch();
}

void EcommerceSystem::on_completion(std::uint32_t slot) {
  RunningThread& thread = running_[slot];
  REJUV_ASSERT(thread.completion_event != sim::kNoEvent, "completion for an unknown thread");
  const double response_time = simulator_.now() - thread.arrival_time;
  thread.completion_event = sim::kNoEvent;
  free_slots_.push_back(slot);
  REJUV_ASSERT(busy_cpus_ >= 1, "completion with no busy CPU");
  account_usage();
  --busy_cpus_;
  // The transaction's memory becomes garbage, reclaimable at the next GC.
  live_mb_ -= config_.alloc_mb;
  garbage_mb_ += config_.alloc_mb;

  // Rule 7: record the response time.
  ++metrics_.completed;
  metrics_.response_time.push(response_time);
  if (tracer_ != nullptr) {
    // Stamp the clock before the decision chain so detector and controller
    // events emitted inside decision_() carry this completion's time.
    tracer_->set_time(simulator_.now());
    tracer_->transaction_completed(response_time);
  }
  if (completed_counter_ != nullptr) {
    completed_counter_->increment();
    rt_histogram_->observe(response_time);
  }
  if (observer_) observer_(response_time);

  // Rule 8: consult the rejuvenation decision.
  if (decision_ && decision_(response_time)) {
    rejuvenate();
    return;
  }
  try_dispatch();
}

void EcommerceSystem::rejuvenate() {
  ++metrics_.rejuvenation_count;
  // Terminate all running threads and release their completion events.
  for (RunningThread& thread : running_) {
    if (thread.completion_event == sim::kNoEvent) continue;
    const bool cancelled = simulator_.cancel(thread.completion_event);
    REJUV_ASSERT(cancelled, "running thread lost its completion event");
    thread.completion_event = sim::kNoEvent;
  }
  const std::size_t flushed = busy_cpus_ + queue_count_;
  if (tracer_ != nullptr) {
    tracer_->set_time(simulator_.now());
    tracer_->rejuvenation_executed(flushed);
  }
  if (rejuvenation_counter_ != nullptr) {
    rejuvenation_counter_->increment();
    flushed_counter_->increment(flushed);
  }
  metrics_.lost_to_rejuvenation += flushed;
  reset_free_slots();
  queue_head_ = 0;
  queue_count_ = 0;
  account_usage();
  busy_cpus_ = 0;
  // Release all resources held by threads: heap (live and garbage) and CPUs.
  live_mb_ = 0.0;
  garbage_mb_ = 0.0;
  if (gc_end_event_ != sim::kNoEvent) {
    simulator_.cancel(gc_end_event_);
    gc_end_event_ = sim::kNoEvent;
  }
  if (config_.rejuvenation_downtime_seconds > 0.0) {
    down_ = true;
    simulator_.schedule_after(config_.rejuvenation_downtime_seconds, [this] {
      down_ = false;
      try_dispatch();
    });
  }
}

void EcommerceSystem::force_rejuvenation() { rejuvenate(); }

void EcommerceSystem::set_metrics(obs::MetricsRegistry* registry) {
  if (registry == nullptr) {
    completed_counter_ = nullptr;
    gc_counter_ = nullptr;
    admission_counter_ = nullptr;
    downtime_counter_ = nullptr;
    rejuvenation_counter_ = nullptr;
    flushed_counter_ = nullptr;
    rt_histogram_ = nullptr;
    return;
  }
  completed_counter_ = &registry->counter("model.transactions_completed");
  gc_counter_ = &registry->counter("model.gc_pauses");
  admission_counter_ = &registry->counter("model.lost_to_admission");
  downtime_counter_ = &registry->counter("model.lost_to_downtime");
  rejuvenation_counter_ = &registry->counter("model.rejuvenations");
  flushed_counter_ = &registry->counter("model.lost_to_rejuvenation");
  rt_histogram_ = &registry->histogram("model.response_time_seconds");
}

void EcommerceSystem::account_usage() {
  const double elapsed = simulator_.now() - last_usage_update_;
  if (elapsed > 0.0) {
    busy_cpu_time_ += static_cast<double>(busy_cpus_) * elapsed;
    heap_used_time_ += (live_mb_ + garbage_mb_) * elapsed;
    last_usage_update_ = simulator_.now();
  }
}

double EcommerceSystem::average_cpu_utilization() const {
  const double elapsed = simulator_.now();
  if (elapsed <= 0.0) return 0.0;
  // Fold in the tail interval since the last state change.
  const double busy = busy_cpu_time_ + static_cast<double>(busy_cpus_) *
                                           (elapsed - last_usage_update_);
  return busy / (elapsed * static_cast<double>(config_.cpus));
}

double EcommerceSystem::average_heap_occupancy() const {
  const double elapsed = simulator_.now();
  if (elapsed <= 0.0) return 0.0;
  const double used = heap_used_time_ + (live_mb_ + garbage_mb_) *
                                            (elapsed - last_usage_update_);
  return used / (elapsed * config_.heap_mb);
}

}  // namespace rejuv::model
