// Simulation model of the multi-tier Java e-commerce system (paper §3).
//
// The model follows the paper's eight numbered rules:
//   1. Poisson arrivals with rate lambda; each arrival is one JVM thread.
//   2. Threads queue FCFS for a CPU.
//   3. CPU processing time ~ Exp(mu), mu = 0.2 tps by default.
//   4. If the number of threads in the system exceeds 50 at dispatch, the
//      sampled processing time is multiplied by 2.0 (kernel overhead).
//   5. On obtaining a CPU a thread allocates 10 MB of heap.
//   6. If free heap drops below 100 MB after an allocation, a full GC runs
//      for 60 s: all threads running at that moment are delayed by the full
//      pause (still holding their CPUs); at GC end all garbage (memory of
//      completed transactions) is reclaimed. Dispatch onto free CPUs
//      continues during the pause as long as the heap can satisfy the
//      allocation — at high load there are no free CPUs, which is what
//      builds the post-GC backlog.
//   7. On completion the response time (waiting + processing + GC delays)
//      is recorded.
//   8. The observed response time is fed to a rejuvenation decision; a
//      positive decision terminates all queued and running threads (they
//      count as lost), releases heap and CPUs, and optionally keeps the
//      system down for a configurable interval.
//
// Where §3 under-specifies, DESIGN.md §5 records the interpretation:
// completed transactions' memory persists as garbage until a GC, "threads
// executing in parallel" means threads in the system, and rejuvenation is
// instantaneous by default.
#pragma once

#include <cstdint>
#include <functional>
#include <memory>
#include <string>
#include <vector>

#include "common/rng.h"
#include "obs/metrics.h"
#include "obs/tracer.h"
#include "sim/simulator.h"
#include "stats/running_stats.h"
#include "workload/arrival_process.h"

namespace rejuv::model {

/// All parameters of the §3 model, defaulted to the paper's values.
struct EcommerceConfig {
  double arrival_rate = 1.6;               ///< lambda, transactions/second
  double service_rate = 0.2;               ///< mu, transactions/second per CPU
  std::size_t cpus = 16;                   ///< c
  std::size_t thread_overhead_threshold = 50;  ///< kernel-overhead onset
  double overhead_factor = 2.0;            ///< processing-time multiplier
  double heap_mb = 3072.0;                 ///< 3 GB JVM heap
  double alloc_mb = 10.0;                  ///< per-transaction allocation
  double gc_free_threshold_mb = 100.0;     ///< full GC when free heap below this
  double gc_pause_seconds = 60.0;          ///< stop-the-world duration
  double rejuvenation_downtime_seconds = 0.0;  ///< 0 = instantaneous restore
  /// What happens to arrivals during rejuvenation downtime: lost (clients
  /// receive errors, the paper's cost accounting) or queued (clients retry /
  /// a front-end buffers them, adding waiting time instead of loss).
  bool queue_arrivals_during_downtime = false;
  /// Admission control (an alternative/complement to rejuvenation): reject
  /// arrivals when the number of threads in the system has reached this
  /// bound. 0 disables admission control. Rejected transactions count as
  /// lost. Setting this at or below thread_overhead_threshold prevents the
  /// kernel-overhead regime entirely, at the price of rejections.
  std::size_t admission_limit = 0;
  bool gc_enabled = true;        ///< false: abstract away steps 5-6 (pure M/M/c)
  bool overhead_enabled = true;  ///< false: abstract away step 4
};

void validate(const EcommerceConfig& config);

/// Counters and summary statistics of one run.
struct EcommerceMetrics {
  std::uint64_t arrivals = 0;
  std::uint64_t completed = 0;
  std::uint64_t lost_to_rejuvenation = 0;  ///< threads flushed by rejuvenation
  std::uint64_t lost_to_downtime = 0;      ///< arrivals during rejuvenation downtime
  std::uint64_t lost_to_admission = 0;     ///< arrivals rejected by admission control
  std::uint64_t gc_count = 0;
  std::uint64_t rejuvenation_count = 0;
  stats::RunningStats response_time;

  std::uint64_t lost() const noexcept {
    return lost_to_rejuvenation + lost_to_downtime + lost_to_admission;
  }
  /// Fraction of offered transactions lost — the paper's rejuvenation cost.
  double loss_fraction() const noexcept {
    return arrivals == 0 ? 0.0 : static_cast<double>(lost()) / static_cast<double>(arrivals);
  }
};

/// The simulated system. Construct, then run_transactions(); afterwards all
/// results are in metrics(). Reuse requires a fresh instance (one run per
/// object keeps the state space auditable).
class EcommerceSystem {
 public:
  /// Decides after each completed transaction whether to rejuvenate; may be
  /// empty (never rejuvenate). The response time passed is the full
  /// waiting + processing (+ GC pause) time.
  using DecisionFn = std::function<bool(double response_time)>;
  /// Optional tap on every completed transaction's response time, invoked
  /// before the decision function.
  using ObserverFn = std::function<void(double response_time)>;

  /// `arrival_rng` and `service_rng` must outlive the system. Separate
  /// streams keep the workload identical across detector configurations
  /// (common random numbers).
  EcommerceSystem(sim::Simulator& simulator, EcommerceConfig config,
                  common::RngStream& arrival_rng, common::RngStream& service_rng);

  void set_decision(DecisionFn decision) { decision_ = std::move(decision); }
  void set_observer(ObserverFn observer) { observer_ = std::move(observer); }

  /// Attaches a structured event tracer. The system stamps the simulation
  /// clock before every emission (including before the decision function,
  /// so detector/controller events carry the right time) and emits
  /// transaction, GC, admission, downtime and rejuvenation events. The
  /// default nullptr leaves the hot path untouched.
  void set_tracer(obs::Tracer* tracer) noexcept { tracer_ = tracer; }

  /// Publishes model counters and the response-time histogram into
  /// `registry` (handles cached once; nullptr detaches).
  void set_metrics(obs::MetricsRegistry* registry);

  /// Replaces the default Poisson(config.arrival_rate) arrival process
  /// (§3 rule 1) with an arbitrary one — bursty MMPP, periodic, trace
  /// replay. Must be called before run_transactions().
  void set_arrival_process(std::unique_ptr<workload::ArrivalProcess> process);

  /// Time-based rejuvenation (the classic policy of Huang et al. [9]): the
  /// system rejuvenates every `interval_seconds` of simulation time,
  /// independent of any measurements. May be combined with a decision
  /// function (hybrid policy). Must be called before run_transactions().
  void enable_periodic_rejuvenation(double interval_seconds);

  /// Generates exactly `count` arrivals and runs the simulation until every
  /// one of them completed or was lost.
  void run_transactions(std::uint64_t count);

  /// External-arrival mode (cluster front end / load balancer): delivers one
  /// transaction at the current simulation time. The caller owns the arrival
  /// process and drives the simulator; self-generated arrivals
  /// (run_transactions) must not be mixed with submitted ones.
  void submit_transaction();

  const EcommerceMetrics& metrics() const noexcept { return metrics_; }

  /// Immediately terminates all work and restores capacity (operator-forced
  /// rejuvenation); normally rejuvenation comes from the decision function.
  void force_rejuvenation();

  /// Time-average CPU utilization so far: busy CPU-time / (elapsed * cpus).
  /// This is the "operations dashboard" metric the paper's case study shows
  /// can look unremarkable while the customer-affecting metric collapses.
  double average_cpu_utilization() const;

  /// Time-average fraction of the heap occupied (live + garbage).
  double average_heap_occupancy() const;

  // --- Introspection (tests, live dashboards) ---
  std::size_t threads_in_system() const noexcept { return queue_count_ + busy_cpus_; }
  std::size_t threads_running() const noexcept { return busy_cpus_; }
  std::size_t threads_queued() const noexcept { return queue_count_; }
  double live_mb() const noexcept { return live_mb_; }
  double garbage_mb() const noexcept { return garbage_mb_; }
  double free_heap_mb() const noexcept { return config_.heap_mb - live_mb_ - garbage_mb_; }
  bool gc_in_progress() const noexcept { return gc_end_event_ != sim::kNoEvent; }
  bool down() const noexcept { return down_; }

 private:
  /// One CPU's running thread. A running thread holds a CPU for its whole
  /// lifetime (§3 rule 2), so the registry is a fixed array of
  /// config_.cpus slots recycled through a free list: dispatch and
  /// completion are O(1) with no per-transaction allocation, and the
  /// completion event captures the 32-bit slot index, which keeps the
  /// closure inside std::function's small buffer. completion_event ==
  /// sim::kNoEvent marks a free slot.
  struct RunningThread {
    double arrival_time = 0.0;
    double completion_time = 0.0;
    sim::EventId completion_event = sim::kNoEvent;
  };

  void on_arrival();
  void admit_transaction();
  void schedule_next_arrival();
  void on_periodic_rejuvenation();
  /// Folds the elapsed interval into the CPU/heap usage integrals; call
  /// immediately before any change to busy_cpus_, live_mb_ or garbage_mb_.
  void account_usage();
  void try_dispatch();
  void start_gc();
  void on_gc_end();
  void on_completion(std::uint32_t slot);
  void rejuvenate();
  void reset_free_slots();

  // FCFS queue (§3 rule 2) of arrival times, as a grow-by-doubling ring
  // buffer: a deque's chunked storage allocates on the hot path, the ring
  // reuses its high-water storage for the rest of the run.
  void queue_push_back(double arrival_time);
  double queue_pop_front() noexcept {
    const double arrival_time = queue_times_[queue_head_];
    queue_head_ = (queue_head_ + 1) & (queue_times_.size() - 1);
    --queue_count_;
    return arrival_time;
  }

  sim::Simulator& simulator_;
  EcommerceConfig config_;
  common::RngStream& arrival_rng_;
  common::RngStream& service_rng_;
  std::unique_ptr<workload::ArrivalProcess> arrival_process_;
  DecisionFn decision_;
  ObserverFn observer_;
  obs::Tracer* tracer_ = nullptr;
  obs::Counter* completed_counter_ = nullptr;
  obs::Counter* gc_counter_ = nullptr;
  obs::Counter* admission_counter_ = nullptr;
  obs::Counter* downtime_counter_ = nullptr;
  obs::Counter* rejuvenation_counter_ = nullptr;
  obs::Counter* flushed_counter_ = nullptr;
  obs::Histogram* rt_histogram_ = nullptr;

  std::vector<double> queue_times_;  ///< ring buffer, power-of-two capacity
  std::size_t queue_head_ = 0;
  std::size_t queue_count_ = 0;
  std::vector<RunningThread> running_;       ///< one slot per CPU
  std::vector<std::uint32_t> free_slots_;    ///< free running_ slots, LIFO
  std::size_t busy_cpus_ = 0;
  double live_mb_ = 0.0;
  double garbage_mb_ = 0.0;
  sim::EventId gc_end_event_ = sim::kNoEvent;
  bool down_ = false;
  double periodic_rejuvenation_interval_ = 0.0;  // 0 = disabled
  double busy_cpu_time_ = 0.0;    // integral of busy_cpus_ over time
  double heap_used_time_ = 0.0;   // integral of (live + garbage) over time
  double last_usage_update_ = 0.0;
  std::uint64_t arrivals_to_generate_ = 0;
  EcommerceMetrics metrics_;
};

}  // namespace rejuv::model
