#include "stats/quantiles.h"

#include <algorithm>
#include <cmath>

#include "common/expect.h"

namespace rejuv::stats {

double sorted_quantile(std::span<const double> sorted_samples, double p) {
  REJUV_EXPECT(!sorted_samples.empty(), "quantile of an empty sample");
  REJUV_EXPECT(p >= 0.0 && p <= 1.0, "quantile probability must lie in [0, 1]");
  const double h = (static_cast<double>(sorted_samples.size()) - 1.0) * p;
  const auto lo = static_cast<std::size_t>(std::floor(h));
  const auto hi = std::min(lo + 1, sorted_samples.size() - 1);
  const double frac = h - std::floor(h);
  return sorted_samples[lo] + frac * (sorted_samples[hi] - sorted_samples[lo]);
}

double sample_quantile(std::span<const double> samples, double p) {
  std::vector<double> sorted(samples.begin(), samples.end());
  std::sort(sorted.begin(), sorted.end());
  return sorted_quantile(sorted, p);
}

WindowAverage::WindowAverage(std::size_t window)
    : current_window_(window), next_window_(window) {
  REJUV_EXPECT(window >= 1, "window must hold at least one observation");
}

std::optional<double> WindowAverage::push(double value) {
  sum_ += value;
  ++count_;
  if (count_ < current_window_) return std::nullopt;
  const double average = sum_ / static_cast<double>(current_window_);
  count_ = 0;
  sum_ = 0.0;
  current_window_ = next_window_;
  return average;
}

void WindowAverage::set_window(std::size_t window) {
  REJUV_EXPECT(window >= 1, "window must hold at least one observation");
  next_window_ = window;
  if (count_ == 0) current_window_ = window;
}

void WindowAverage::restore(std::size_t current_window, std::size_t next_window,
                            std::size_t count, double sum) {
  REJUV_EXPECT(current_window >= 1 && next_window >= 1,
               "restored window must hold at least one observation");
  REJUV_EXPECT(count < current_window, "restored block must be incomplete");
  current_window_ = current_window;
  next_window_ = next_window;
  count_ = count;
  sum_ = sum;
}

void WindowAverage::reset() noexcept {
  count_ = 0;
  sum_ = 0.0;
  current_window_ = next_window_;
}

}  // namespace rejuv::stats
