// Non-parametric trend detection: Mann-Kendall test and Sen's slope.
//
// The related-work line of Trivedi et al. [15] detects software aging by
// trend analysis of resource/performance time series. These primitives back
// the TrendDetector extension: the Mann-Kendall statistic tests for a
// monotonic trend without distributional assumptions, and Sen's slope
// estimates its magnitude robustly.
#pragma once

#include <cstddef>
#include <span>

namespace rejuv::stats {

/// Result of a Mann-Kendall trend test.
struct MannKendallResult {
  long long s = 0;        ///< sum of sign(x_j - x_i) over i < j
  double variance = 0.0;  ///< Var(S) under the no-trend null (no tie correction)
  double z = 0.0;         ///< normal test statistic (continuity-corrected)

  /// One-sided test for an *increasing* trend at standard-normal quantile z_alpha.
  bool increasing(double z_alpha = 1.645) const noexcept { return z > z_alpha; }
  /// One-sided test for a decreasing trend.
  bool decreasing(double z_alpha = 1.645) const noexcept { return z < -z_alpha; }
};

/// Mann-Kendall test over a window (requires >= 3 observations). O(n^2).
MannKendallResult mann_kendall(std::span<const double> window);

/// Sen's slope: the median of all pairwise slopes (x_j - x_i)/(j - i),
/// a robust estimate of trend magnitude per observation. O(n^2 log n).
double sen_slope(std::span<const double> window);

}  // namespace rejuv::stats
