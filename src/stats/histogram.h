// Fixed-bin histogram and empirical distribution utilities.
//
// Used to estimate response-time densities from simulation (for comparing
// against the exact CTMC density of Fig. 5) and to report loss/RT
// distributions in the examples.
#pragma once

#include <cstdint>
#include <span>
#include <vector>

namespace rejuv::stats {

/// Equal-width histogram over [lo, hi); out-of-range samples are counted in
/// saturating under/overflow bins so no observation is silently dropped.
class Histogram {
 public:
  Histogram(double lo, double hi, std::size_t bins);

  void push(double value) noexcept;

  std::size_t bin_count() const noexcept { return counts_.size(); }
  double lo() const noexcept { return lo_; }
  double hi() const noexcept { return hi_; }
  double bin_width() const noexcept { return width_; }
  std::uint64_t total() const noexcept { return total_; }
  std::uint64_t underflow() const noexcept { return underflow_; }
  std::uint64_t overflow() const noexcept { return overflow_; }
  std::uint64_t count(std::size_t bin) const;

  /// Center abscissa of a bin.
  double bin_center(std::size_t bin) const;

  /// Normalized density estimate (integrates to the in-range fraction).
  std::vector<double> density() const;

 private:
  double lo_;
  double hi_;
  double width_;
  std::vector<std::uint64_t> counts_;
  std::uint64_t underflow_ = 0;
  std::uint64_t overflow_ = 0;
  std::uint64_t total_ = 0;
};

/// Empirical CDF evaluated at x: fraction of samples <= x.
double empirical_cdf(std::span<const double> sorted_samples, double x);

}  // namespace rejuv::stats
