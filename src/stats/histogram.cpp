#include "stats/histogram.h"

#include <algorithm>
#include <cmath>

#include "common/expect.h"

namespace rejuv::stats {

Histogram::Histogram(double lo, double hi, std::size_t bins)
    : lo_(lo), hi_(hi), width_((hi - lo) / static_cast<double>(bins)), counts_(bins, 0) {
  REJUV_EXPECT(bins > 0, "histogram needs at least one bin");
  REJUV_EXPECT(hi > lo, "histogram range must be non-empty");
}

void Histogram::push(double value) noexcept {
  ++total_;
  if (value < lo_) {
    ++underflow_;
    return;
  }
  if (value >= hi_) {
    ++overflow_;
    return;
  }
  auto bin = static_cast<std::size_t>((value - lo_) / width_);
  bin = std::min(bin, counts_.size() - 1);  // guards rounding at the top edge
  ++counts_[bin];
}

std::uint64_t Histogram::count(std::size_t bin) const {
  REJUV_EXPECT(bin < counts_.size(), "bin index out of range");
  return counts_[bin];
}

double Histogram::bin_center(std::size_t bin) const {
  REJUV_EXPECT(bin < counts_.size(), "bin index out of range");
  return lo_ + (static_cast<double>(bin) + 0.5) * width_;
}

std::vector<double> Histogram::density() const {
  std::vector<double> out(counts_.size(), 0.0);
  if (total_ == 0) return out;
  const double norm = 1.0 / (static_cast<double>(total_) * width_);
  for (std::size_t i = 0; i < counts_.size(); ++i) {
    out[i] = static_cast<double>(counts_[i]) * norm;
  }
  return out;
}

double empirical_cdf(std::span<const double> sorted_samples, double x) {
  REJUV_EXPECT(!sorted_samples.empty(), "empirical CDF of an empty sample");
  const auto it = std::upper_bound(sorted_samples.begin(), sorted_samples.end(), x);
  return static_cast<double>(it - sorted_samples.begin()) /
         static_cast<double>(sorted_samples.size());
}

}  // namespace rejuv::stats
