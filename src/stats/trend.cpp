#include "stats/trend.h"

#include <algorithm>
#include <cmath>
#include <vector>

#include "common/expect.h"

namespace rejuv::stats {

MannKendallResult mann_kendall(std::span<const double> window) {
  const std::size_t n = window.size();
  REJUV_EXPECT(n >= 3, "Mann-Kendall needs at least 3 observations");
  MannKendallResult result;
  for (std::size_t i = 0; i < n; ++i) {
    for (std::size_t j = i + 1; j < n; ++j) {
      const double diff = window[j] - window[i];
      result.s += diff > 0.0 ? 1 : (diff < 0.0 ? -1 : 0);
    }
  }
  const double dn = static_cast<double>(n);
  result.variance = dn * (dn - 1.0) * (2.0 * dn + 5.0) / 18.0;
  const double sd = std::sqrt(result.variance);
  if (result.s > 0) {
    result.z = (static_cast<double>(result.s) - 1.0) / sd;
  } else if (result.s < 0) {
    result.z = (static_cast<double>(result.s) + 1.0) / sd;
  } else {
    result.z = 0.0;
  }
  return result;
}

double sen_slope(std::span<const double> window) {
  const std::size_t n = window.size();
  REJUV_EXPECT(n >= 2, "Sen's slope needs at least 2 observations");
  std::vector<double> slopes;
  slopes.reserve(n * (n - 1) / 2);
  for (std::size_t i = 0; i < n; ++i) {
    for (std::size_t j = i + 1; j < n; ++j) {
      slopes.push_back((window[j] - window[i]) / static_cast<double>(j - i));
    }
  }
  const auto mid = slopes.begin() + static_cast<std::ptrdiff_t>(slopes.size() / 2);
  std::nth_element(slopes.begin(), mid, slopes.end());
  if (slopes.size() % 2 == 1) return *mid;
  const double upper = *mid;
  const double lower = *std::max_element(slopes.begin(), mid);
  return 0.5 * (lower + upper);
}

}  // namespace rejuv::stats
