#include "stats/ks_test.h"

#include <algorithm>
#include <cmath>
#include <vector>

#include "common/expect.h"

namespace rejuv::stats {

double kolmogorov_tail(double t) {
  REJUV_EXPECT(t >= 0.0, "Kolmogorov statistic must be non-negative");
  if (t < 1e-3) return 1.0;
  double sum = 0.0;
  double sign = 1.0;
  for (int k = 1; k <= 100; ++k) {
    const double term = std::exp(-2.0 * k * k * t * t);
    sum += sign * term;
    sign = -sign;
    if (term < 1e-16) break;
  }
  return std::clamp(2.0 * sum, 0.0, 1.0);
}

KsResult ks_test(std::span<const double> samples, const std::function<double(double)>& cdf) {
  REJUV_EXPECT(samples.size() >= 8, "KS test needs at least 8 observations");
  REJUV_EXPECT(static_cast<bool>(cdf), "KS test needs a CDF");
  std::vector<double> sorted(samples.begin(), samples.end());
  std::sort(sorted.begin(), sorted.end());

  const double n = static_cast<double>(sorted.size());
  double d = 0.0;
  for (std::size_t i = 0; i < sorted.size(); ++i) {
    const double f = cdf(sorted[i]);
    REJUV_EXPECT(f >= -1e-12 && f <= 1.0 + 1e-12, "CDF value outside [0, 1]");
    const double upper = static_cast<double>(i + 1) / n - f;  // F_n jumps above F
    const double lower = f - static_cast<double>(i) / n;      // F above F_n
    d = std::max({d, upper, lower});
  }

  KsResult result;
  result.statistic = d;
  result.sample_size = sorted.size();
  // Small-sample-corrected argument (Stephens) improves the asymptotic tail.
  const double sqrt_n = std::sqrt(n);
  result.p_value = kolmogorov_tail(d * (sqrt_n + 0.12 + 0.11 / sqrt_n));
  return result;
}

}  // namespace rejuv::stats
