// Standard normal distribution: density, CDF, and quantile function.
//
// CLTA's decision threshold is a standard-normal quantile (the paper uses
// N = 1.96, the 97.5% point), and the false-alarm analysis of section 4.1
// compares exact tail masses of the sample-average distribution against
// normal tails. The CDF uses std::erfc; the quantile uses Acklam's rational
// approximation polished with one Halley iteration, giving ~1e-15 accuracy.
#pragma once

namespace rejuv::stats {

/// Standard normal probability density.
double normal_pdf(double x) noexcept;

/// Density of N(mean, sigma^2); `sigma` must be positive.
double normal_pdf(double x, double mean, double sigma);

/// Standard normal cumulative distribution function.
double normal_cdf(double x) noexcept;

/// CDF of N(mean, sigma^2); `sigma` must be positive.
double normal_cdf(double x, double mean, double sigma);

/// Inverse standard normal CDF. `p` must lie in the open interval (0, 1).
double normal_quantile(double p);

/// Inverse CDF of N(mean, sigma^2).
double normal_quantile(double p, double mean, double sigma);

}  // namespace rejuv::stats
