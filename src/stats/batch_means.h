// Batch-means confidence intervals for steady-state simulation output.
//
// Replicated simulation runs report a point estimate with an interval; the
// batch-means method also provides an interval from a single long run by
// averaging over nearly-independent batches. Used by the harness to attach
// uncertainty to the per-load response-time estimates.
#pragma once

#include <cstddef>
#include <span>

namespace rejuv::stats {

/// A symmetric confidence interval around a mean.
struct ConfidenceInterval {
  double mean = 0.0;
  double half_width = 0.0;
  std::size_t batches = 0;

  double lower() const noexcept { return mean - half_width; }
  double upper() const noexcept { return mean + half_width; }
  bool contains(double value) const noexcept { return value >= lower() && value <= upper(); }
};

/// Batch-means interval: splits `series` into `batches` equal batches,
/// discards the remainder, and builds a normal-approximation interval from
/// the batch averages. Requires at least 2 batches and 1 value per batch.
ConfidenceInterval batch_means_interval(std::span<const double> series, std::size_t batches,
                                        double confidence_z = 1.96);

/// Interval from independent replication means (one value per replication).
ConfidenceInterval replication_interval(std::span<const double> replication_means,
                                        double confidence_z = 1.96);

}  // namespace rejuv::stats
