#include "stats/batch_means.h"

#include <cmath>
#include <vector>

#include "common/expect.h"
#include "stats/running_stats.h"

namespace rejuv::stats {

ConfidenceInterval batch_means_interval(std::span<const double> series, std::size_t batches,
                                        double confidence_z) {
  REJUV_EXPECT(batches >= 2, "batch means needs at least two batches");
  REJUV_EXPECT(series.size() >= batches, "series shorter than batch count");
  const std::size_t per_batch = series.size() / batches;
  std::vector<double> batch_means;
  batch_means.reserve(batches);
  for (std::size_t b = 0; b < batches; ++b) {
    double sum = 0.0;
    for (std::size_t i = 0; i < per_batch; ++i) sum += series[b * per_batch + i];
    batch_means.push_back(sum / static_cast<double>(per_batch));
  }
  return replication_interval(batch_means, confidence_z);
}

ConfidenceInterval replication_interval(std::span<const double> replication_means,
                                        double confidence_z) {
  REJUV_EXPECT(replication_means.size() >= 2, "need at least two replications for an interval");
  REJUV_EXPECT(confidence_z > 0.0, "z must be positive");
  RunningStats stats;
  for (double value : replication_means) stats.push(value);
  ConfidenceInterval ci;
  ci.mean = stats.mean();
  ci.batches = replication_means.size();
  ci.half_width =
      confidence_z * stats.stddev() / std::sqrt(static_cast<double>(replication_means.size()));
  return ci;
}

}  // namespace rejuv::stats
