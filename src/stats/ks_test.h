// One-sample Kolmogorov-Smirnov goodness-of-fit test.
//
// Used by the cross-validation suite to compare *whole distributions* (not
// just moments) between the simulation stack and the analytical stack: the
// empirical CDF of simulated response times against eq. (1), and simulated
// block averages against the eq. (4) phase-type CDF.
#pragma once

#include <functional>
#include <span>

namespace rejuv::stats {

struct KsResult {
  double statistic = 0.0;  ///< D_n = sup_x |F_n(x) - F(x)|
  double p_value = 0.0;    ///< asymptotic Kolmogorov distribution tail
  std::size_t sample_size = 0;

  /// True when the fit is rejected at the given significance level.
  bool rejected(double alpha = 0.01) const noexcept { return p_value < alpha; }
};

/// KS test of `samples` against the continuous CDF `cdf`. The sample is
/// copied and sorted internally; requires at least 8 observations for the
/// asymptotic p-value to be meaningful.
KsResult ks_test(std::span<const double> samples, const std::function<double(double)>& cdf);

/// The asymptotic Kolmogorov tail Q(t) = 2 sum_{k>=1} (-1)^{k-1} e^{-2 k^2 t^2},
/// evaluated at t = sqrt(n) * D_n; clamped to [0, 1].
double kolmogorov_tail(double t);

}  // namespace rejuv::stats
