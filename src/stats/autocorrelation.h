// Serial-correlation estimators for response-time series.
//
// Section 4.1 of the paper justifies the CLT-based detector by estimating the
// first-order autocorrelation of simulated response times over five
// replications of 100,000 transactions, discarding the first 10,000 as
// warm-up, and comparing |gamma_hat| against the 95% significance bound
// 1.96/sqrt(m). This module implements exactly that estimator plus a general
// lag-k variant.
#pragma once

#include <cstddef>
#include <span>

namespace rejuv::stats {

/// Lag-k sample autocorrelation of `series` computed over the index window
/// [warmup, series.size()), using the paper's estimator
///   gamma_hat = sum (x_{i+k}-xbar)(x_i-xbar) / sum (x_i-xbar)^2
/// with xbar the mean over the window. Requires at least k+2 observations
/// after warm-up. Returns 0 for a constant series.
double autocorrelation(std::span<const double> series, std::size_t lag, std::size_t warmup = 0);

/// First-order autocorrelation, the statistic studied in section 4.1.
double lag1_autocorrelation(std::span<const double> series, std::size_t warmup = 0);

/// Two-sided 95% significance bound for a white-noise null: 1.96/sqrt(m),
/// where m is the number of observations after warm-up.
double autocorrelation_significance_bound(std::size_t observations_after_warmup,
                                          double confidence_z = 1.96);

/// True when |gamma_hat| exceeds the significance bound.
bool autocorrelation_is_significant(double gamma_hat, std::size_t observations_after_warmup,
                                    double confidence_z = 1.96);

/// Ljung-Box portmanteau test over lags 1..max_lag: joint test of "no serial
/// correlation", extending the paper's single-lag check.
struct LjungBoxResult {
  double statistic = 0.0;  ///< Q = m(m+2) sum_k gamma_k^2 / (m - k)
  std::size_t lags = 0;
  double p_value = 0.0;    ///< chi-squared(lags) tail

  bool rejected(double alpha = 0.05) const noexcept { return p_value < alpha; }
};

LjungBoxResult ljung_box(std::span<const double> series, std::size_t max_lag,
                         std::size_t warmup = 0);

}  // namespace rejuv::stats
