// Single-pass summary statistics.
//
// RunningStats implements Welford's online algorithm for mean and variance,
// which is numerically stable for the long (10^5-10^6 observation) response
// time streams the simulations produce. Instances are mergeable so that
// per-replication summaries can be combined into an overall estimate.
#pragma once

#include <cstdint>

namespace rejuv::stats {

/// Online mean / variance / extrema accumulator (Welford / Chan).
class RunningStats {
 public:
  void push(double value) noexcept;

  /// Merges another accumulator (parallel-variance formula of Chan et al.).
  void merge(const RunningStats& other) noexcept;

  void reset() noexcept { *this = RunningStats{}; }

  /// Replaces the accumulator state with previously saved raw moments
  /// (checkpoint restore). The values must come from `count`/`raw_mean`/
  /// `m2`/`min`/`max` of another instance for the statistics to stay valid.
  void restore(std::uint64_t count, double mean, double m2, double min, double max) noexcept;

  std::uint64_t count() const noexcept { return count_; }
  /// Arithmetic mean; 0 when empty.
  double mean() const noexcept { return count_ == 0 ? 0.0 : mean_; }
  /// The running mean without the empty-case guard (checkpoint save).
  double raw_mean() const noexcept { return mean_; }
  /// Sum of squared deviations from the running mean (checkpoint save).
  double m2() const noexcept { return m2_; }
  /// Unbiased sample variance (n-1 denominator); 0 for fewer than 2 samples.
  double variance() const noexcept;
  /// Population variance (n denominator); 0 when empty.
  double population_variance() const noexcept;
  double stddev() const noexcept;
  double min() const noexcept { return min_; }
  double max() const noexcept { return max_; }
  double sum() const noexcept { return mean_ * static_cast<double>(count_); }

 private:
  std::uint64_t count_ = 0;
  double mean_ = 0.0;
  double m2_ = 0.0;  // sum of squared deviations from the running mean
  double min_ = 0.0;
  double max_ = 0.0;
};

/// Exponentially weighted moving average / variance, used by the adaptive
/// baseline estimator (paper section 6, future work) to track a drifting
/// "normal behaviour" mean and standard deviation.
class EwmaStats {
 public:
  /// `alpha` in (0, 1]: weight of the newest observation.
  explicit EwmaStats(double alpha);

  void push(double value) noexcept;
  bool empty() const noexcept { return count_ == 0; }
  std::uint64_t count() const noexcept { return count_; }
  double mean() const noexcept { return mean_; }
  double variance() const noexcept { return variance_; }
  double stddev() const noexcept;

 private:
  double alpha_;
  std::uint64_t count_ = 0;
  double mean_ = 0.0;
  double variance_ = 0.0;
};

}  // namespace rejuv::stats
