// P-square (P²) online quantile estimation (Jain & Chlamtac, 1985).
//
// Monitoring the customer-affecting metric in production means tracking
// upper quantiles (p95/p99 response time) without storing the stream. The P²
// algorithm maintains five markers and estimates an arbitrary quantile in
// O(1) memory and time per observation; it backs adaptive variants of the
// quantile-threshold policy and the monitoring examples.
#pragma once

#include <array>
#include <cstdint>

namespace rejuv::stats {

class P2Quantile {
 public:
  /// `p` in (0, 1): the quantile to track (e.g. 0.95).
  explicit P2Quantile(double p);

  void push(double value);

  std::uint64_t count() const noexcept { return count_; }

  /// Current estimate. Requires at least one observation; with fewer than
  /// five it is the exact sample quantile of what has been seen.
  double quantile() const;

  double probability() const noexcept { return p_; }

 private:
  double parabolic(int i, double direction) const;
  double linear(int i, double direction) const;

  double p_;
  std::uint64_t count_ = 0;
  std::array<double, 5> heights_{};         // marker heights q_i
  std::array<double, 5> positions_{};       // marker positions n_i
  std::array<double, 5> desired_{};         // desired positions n'_i
  std::array<double, 5> desired_delta_{};   // dn'_i per observation
};

}  // namespace rejuv::stats
