#include "stats/autocorrelation.h"

#include <cmath>

#include "common/expect.h"
#include "stats/chi_squared.h"

namespace rejuv::stats {

double autocorrelation(std::span<const double> series, std::size_t lag, std::size_t warmup) {
  REJUV_EXPECT(lag >= 1, "lag must be at least 1");
  REJUV_EXPECT(series.size() > warmup + lag + 1, "series too short for requested lag and warmup");
  const std::size_t begin = warmup;
  const std::size_t end = series.size();
  const double m = static_cast<double>(end - begin);

  double mean = 0.0;
  for (std::size_t i = begin; i < end; ++i) mean += series[i];
  mean /= m;

  double numerator = 0.0;
  double denominator = 0.0;
  for (std::size_t i = begin; i < end; ++i) {
    const double centered = series[i] - mean;
    denominator += centered * centered;
    if (i + lag < end) numerator += (series[i + lag] - mean) * centered;
  }
  if (denominator == 0.0) return 0.0;
  return numerator / denominator;
}

double lag1_autocorrelation(std::span<const double> series, std::size_t warmup) {
  return autocorrelation(series, 1, warmup);
}

double autocorrelation_significance_bound(std::size_t observations_after_warmup,
                                          double confidence_z) {
  REJUV_EXPECT(observations_after_warmup > 0, "need at least one observation");
  REJUV_EXPECT(confidence_z > 0.0, "z must be positive");
  return confidence_z / std::sqrt(static_cast<double>(observations_after_warmup));
}

bool autocorrelation_is_significant(double gamma_hat, std::size_t observations_after_warmup,
                                    double confidence_z) {
  return std::abs(gamma_hat) >
         autocorrelation_significance_bound(observations_after_warmup, confidence_z);
}

LjungBoxResult ljung_box(std::span<const double> series, std::size_t max_lag,
                         std::size_t warmup) {
  REJUV_EXPECT(max_lag >= 1, "need at least one lag");
  REJUV_EXPECT(series.size() > warmup + max_lag + 1, "series too short for requested lags");
  const double m = static_cast<double>(series.size() - warmup);
  LjungBoxResult result;
  result.lags = max_lag;
  for (std::size_t k = 1; k <= max_lag; ++k) {
    const double gamma_k = autocorrelation(series, k, warmup);
    result.statistic += gamma_k * gamma_k / (m - static_cast<double>(k));
  }
  result.statistic *= m * (m + 2.0);
  result.p_value = chi_squared_survival(result.statistic, max_lag);
  return result;
}

}  // namespace rejuv::stats
