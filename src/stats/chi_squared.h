// Chi-squared tail probabilities via the regularized incomplete gamma
// function — needed by the Ljung-Box portmanteau test that extends the
// paper's §4.1 lag-1 autocorrelation check to joint significance over
// several lags.
#pragma once

#include <cstddef>

namespace rejuv::stats {

/// Regularized lower incomplete gamma P(a, x) = γ(a, x) / Γ(a), a > 0, x >= 0.
/// Series expansion for x < a + 1, continued fraction otherwise; absolute
/// accuracy ~1e-12.
double regularized_gamma_p(double a, double x);

/// Upper tail Q(a, x) = 1 - P(a, x).
double regularized_gamma_q(double a, double x);

/// Survival function of the chi-squared distribution with `dof` degrees of
/// freedom: P(X > x).
double chi_squared_survival(double x, std::size_t dof);

}  // namespace rejuv::stats
