// Sample quantiles and fixed-size averaging windows.
//
// WindowAverage is the primitive behind all three detectors in the paper:
// SRAA, SARAA and CLTA each consume observations one at a time and act only
// when a full window of n values has been averaged. SARAA additionally
// changes the window length while running; resizing takes effect from the
// next window, matching the pseudo-code where n is recomputed only on bucket
// transitions (i.e., between windows).
#pragma once

#include <cstddef>
#include <optional>
#include <span>
#include <vector>

namespace rejuv::stats {

/// Linear-interpolation sample quantile (Hyndman-Fan type 7, the R default).
/// `p` in [0, 1]; the input need not be sorted (a copy is sorted internally).
double sample_quantile(std::span<const double> samples, double p);

/// Quantile over pre-sorted data, no copy.
double sorted_quantile(std::span<const double> sorted_samples, double p);

/// Accumulates observations and emits the mean of each disjoint block of
/// `window` values.
class WindowAverage {
 public:
  explicit WindowAverage(std::size_t window);

  /// Adds one observation. Returns the block average when this observation
  /// completes a window, otherwise std::nullopt.
  std::optional<double> push(double value);

  /// Sets the window length used for the *next* block. If a block is in
  /// progress it still completes at the old length.
  void set_window(std::size_t window);

  std::size_t window() const noexcept { return next_window_; }
  std::size_t pending() const noexcept { return count_; }
  /// Length of the block currently being accumulated (checkpoint save; may
  /// differ from window() while a pre-resize block is still completing).
  std::size_t current_window() const noexcept { return current_window_; }
  /// Running sum of the partially accumulated block (checkpoint save).
  double partial_sum() const noexcept { return sum_; }

  /// Restores a partially accumulated block saved via the accessors above
  /// (checkpoint restore). `count` must be smaller than `current_window`.
  void restore(std::size_t current_window, std::size_t next_window, std::size_t count, double sum);

  /// Drops any partially accumulated block and applies a pending resize.
  void reset() noexcept;

 private:
  std::size_t current_window_;
  std::size_t next_window_;
  std::size_t count_ = 0;
  double sum_ = 0.0;
};

}  // namespace rejuv::stats
