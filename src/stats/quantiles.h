// Sample quantiles and fixed-size averaging windows.
//
// WindowAverage is the primitive behind all three detectors in the paper:
// SRAA, SARAA and CLTA each consume observations one at a time and act only
// when a full window of n values has been averaged. SARAA additionally
// changes the window length while running; resizing takes effect from the
// next window, matching the pseudo-code where n is recomputed only on bucket
// transitions (i.e., between windows).
#pragma once

#include <cstddef>
#include <optional>
#include <span>
#include <vector>

namespace rejuv::stats {

/// Linear-interpolation sample quantile (Hyndman-Fan type 7, the R default).
/// `p` in [0, 1]; the input need not be sorted (a copy is sorted internally).
double sample_quantile(std::span<const double> samples, double p);

/// Quantile over pre-sorted data, no copy.
double sorted_quantile(std::span<const double> sorted_samples, double p);

/// Accumulates observations and emits the mean of each disjoint block of
/// `window` values.
class WindowAverage {
 public:
  explicit WindowAverage(std::size_t window);

  /// Adds one observation. Returns the block average when this observation
  /// completes a window, otherwise std::nullopt.
  std::optional<double> push(double value);

  /// Sets the window length used for the *next* block. If a block is in
  /// progress it still completes at the old length.
  void set_window(std::size_t window);

  std::size_t window() const noexcept { return next_window_; }
  std::size_t pending() const noexcept { return count_; }
  /// Length of the block currently being accumulated (checkpoint save; may
  /// differ from window() while a pre-resize block is still completing).
  std::size_t current_window() const noexcept { return current_window_; }
  /// Running sum of the partially accumulated block (checkpoint save).
  double partial_sum() const noexcept { return sum_; }

  /// Restores a partially accumulated block saved via the accessors above
  /// (checkpoint restore). `count` must be smaller than `current_window`.
  void restore(std::size_t current_window, std::size_t next_window, std::size_t count, double sum);

  /// Drops any partially accumulated block and applies a pending resize.
  void reset() noexcept;

  /// Feeds `values` in order, invoking `on_average(average)` once per
  /// completed block, exactly as a loop of push() would — the running sum is
  /// accumulated left to right from the current partial state, so block
  /// averages are bit-identical to the sequential path. `on_average` returns
  /// false to stop consuming (the detector batch paths stop at a trigger);
  /// it may call set_window()/reset(), which take effect from the next
  /// block. Returns the number of values consumed; the value completing the
  /// last delivered block is values[consumed - 1].
  ///
  /// This is the detectors' observe_all hot path: the inner accumulation
  /// loop touches no member state and carries no per-value branches beyond
  /// the loop bound, so the compiler can vectorize it.
  template <typename OnAverage>
  std::size_t push_all(std::span<const double> values, OnAverage&& on_average) {
    std::size_t consumed = 0;
    while (consumed < values.size()) {
      const std::size_t window = current_window_;
      const std::size_t room = window - count_;
      const std::size_t take =
          room < values.size() - consumed ? room : values.size() - consumed;
      double sum = sum_;
      for (std::size_t i = 0; i < take; ++i) sum += values[consumed + i];
      consumed += take;
      if (take < room) {  // batch exhausted mid-block
        sum_ = sum;
        count_ += take;
        return consumed;
      }
      // Block boundary: commit exactly as push() does, then hand the
      // average out (the callback may retarget or resize the window).
      const double average = sum / static_cast<double>(window);
      count_ = 0;
      sum_ = 0.0;
      current_window_ = next_window_;
      if (!on_average(average)) return consumed;
    }
    return consumed;
  }

 private:
  std::size_t current_window_;
  std::size_t next_window_;
  std::size_t count_ = 0;
  double sum_ = 0.0;
};

}  // namespace rejuv::stats
