#include "stats/chi_squared.h"

#include <cmath>

#include "common/expect.h"

namespace rejuv::stats {

namespace {

/// Series representation of P(a, x), converges fast for x < a + 1.
double gamma_p_series(double a, double x) {
  double term = 1.0 / a;
  double sum = term;
  double ap = a;
  for (int i = 0; i < 500; ++i) {
    ap += 1.0;
    term *= x / ap;
    sum += term;
    if (std::abs(term) < std::abs(sum) * 1e-15) break;
  }
  return sum * std::exp(-x + a * std::log(x) - std::lgamma(a));
}

/// Lentz continued fraction for Q(a, x), converges fast for x > a + 1.
double gamma_q_continued_fraction(double a, double x) {
  constexpr double kTiny = 1e-300;
  double b = x + 1.0 - a;
  double c = 1.0 / kTiny;
  double d = 1.0 / b;
  double h = d;
  for (int i = 1; i <= 500; ++i) {
    const double an = -static_cast<double>(i) * (static_cast<double>(i) - a);
    b += 2.0;
    d = an * d + b;
    if (std::abs(d) < kTiny) d = kTiny;
    c = b + an / c;
    if (std::abs(c) < kTiny) c = kTiny;
    d = 1.0 / d;
    const double delta = d * c;
    h *= delta;
    if (std::abs(delta - 1.0) < 1e-15) break;
  }
  return h * std::exp(-x + a * std::log(x) - std::lgamma(a));
}

}  // namespace

double regularized_gamma_p(double a, double x) {
  REJUV_EXPECT(a > 0.0, "shape parameter must be positive");
  REJUV_EXPECT(x >= 0.0, "argument must be non-negative");
  if (x == 0.0) return 0.0;
  if (x < a + 1.0) return gamma_p_series(a, x);
  return 1.0 - gamma_q_continued_fraction(a, x);
}

double regularized_gamma_q(double a, double x) {
  REJUV_EXPECT(a > 0.0, "shape parameter must be positive");
  REJUV_EXPECT(x >= 0.0, "argument must be non-negative");
  if (x == 0.0) return 1.0;
  if (x < a + 1.0) return 1.0 - gamma_p_series(a, x);
  return gamma_q_continued_fraction(a, x);
}

double chi_squared_survival(double x, std::size_t dof) {
  REJUV_EXPECT(dof >= 1, "need at least one degree of freedom");
  REJUV_EXPECT(x >= 0.0, "chi-squared statistic must be non-negative");
  return regularized_gamma_q(static_cast<double>(dof) / 2.0, x / 2.0);
}

}  // namespace rejuv::stats
