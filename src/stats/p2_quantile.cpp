#include "stats/p2_quantile.h"

#include <algorithm>
#include <cmath>

#include "common/expect.h"

namespace rejuv::stats {

P2Quantile::P2Quantile(double p) : p_(p) {
  REJUV_EXPECT(p > 0.0 && p < 1.0, "quantile probability must lie in (0, 1)");
  desired_delta_ = {0.0, p_ / 2.0, p_, (1.0 + p_) / 2.0, 1.0};
}

double P2Quantile::parabolic(int i, double d) const {
  const double np = positions_[static_cast<std::size_t>(i + 1)];
  const double nm = positions_[static_cast<std::size_t>(i - 1)];
  const double n = positions_[static_cast<std::size_t>(i)];
  const double qp = heights_[static_cast<std::size_t>(i + 1)];
  const double qm = heights_[static_cast<std::size_t>(i - 1)];
  const double q = heights_[static_cast<std::size_t>(i)];
  return q + d / (np - nm) *
                 ((n - nm + d) * (qp - q) / (np - n) + (np - n - d) * (q - qm) / (n - nm));
}

double P2Quantile::linear(int i, double d) const {
  const auto idx = static_cast<std::size_t>(i);
  const auto nbr = static_cast<std::size_t>(i + static_cast<int>(d));
  return heights_[idx] + d * (heights_[nbr] - heights_[idx]) /
                             (positions_[nbr] - positions_[idx]);
}

void P2Quantile::push(double value) {
  ++count_;
  if (count_ <= 5) {
    heights_[count_ - 1] = value;
    if (count_ == 5) {
      std::sort(heights_.begin(), heights_.end());
      for (std::size_t i = 0; i < 5; ++i) {
        positions_[i] = static_cast<double>(i + 1);
        desired_[i] = 1.0 + 4.0 * desired_delta_[i];
      }
      // Initialize the desired positions for exactly 5 observations.
      desired_ = {1.0, 1.0 + 2.0 * p_, 1.0 + 4.0 * p_, 3.0 + 2.0 * p_, 5.0};
    }
    return;
  }

  // Locate the cell containing the new observation and update extremes.
  std::size_t cell;
  if (value < heights_[0]) {
    heights_[0] = value;
    cell = 0;
  } else if (value >= heights_[4]) {
    heights_[4] = value;
    cell = 3;
  } else {
    cell = 0;
    while (cell < 3 && value >= heights_[cell + 1]) ++cell;
  }

  for (std::size_t i = cell + 1; i < 5; ++i) positions_[i] += 1.0;
  desired_[0] += 0.0;
  desired_[1] += p_ / 2.0;
  desired_[2] += p_;
  desired_[3] += (1.0 + p_) / 2.0;
  desired_[4] += 1.0;

  // Adjust the three interior markers toward their desired positions.
  for (int i = 1; i <= 3; ++i) {
    const auto idx = static_cast<std::size_t>(i);
    const double gap = desired_[idx] - positions_[idx];
    const double ahead = positions_[idx + 1] - positions_[idx];
    const double behind = positions_[idx - 1] - positions_[idx];
    if ((gap >= 1.0 && ahead > 1.0) || (gap <= -1.0 && behind < -1.0)) {
      const double direction = gap >= 1.0 ? 1.0 : -1.0;
      double candidate = parabolic(i, direction);
      if (heights_[idx - 1] < candidate && candidate < heights_[idx + 1]) {
        heights_[idx] = candidate;
      } else {
        heights_[idx] = linear(i, direction);
      }
      positions_[idx] += direction;
    }
  }
}

double P2Quantile::quantile() const {
  REJUV_EXPECT(count_ >= 1, "quantile of an empty stream");
  if (count_ >= 5) return heights_[2];
  // Small-sample fallback: exact quantile of the seen values.
  std::array<double, 5> sorted = heights_;
  const auto n = static_cast<std::size_t>(count_);
  std::sort(sorted.begin(), sorted.begin() + static_cast<std::ptrdiff_t>(n));
  const double h = (static_cast<double>(n) - 1.0) * p_;
  const auto lo = static_cast<std::size_t>(h);
  const auto hi = std::min(lo + 1, n - 1);
  return sorted[lo] + (h - std::floor(h)) * (sorted[hi] - sorted[lo]);
}

}  // namespace rejuv::stats
