// Elementary hypothesis tests on stream means.
//
// The paper's CLTA is exactly a one-sided z-test on a block mean against the
// service-level baseline. Exposing the test separately lets users apply the
// same decision rule outside of the detector machinery, and lets the tests
// validate the detector against an independent implementation.
#pragma once

#include <cstddef>

namespace rejuv::stats {

/// z statistic for a sample mean: (xbar - mu0) / (sigma / sqrt(n)).
double z_statistic(double sample_mean, double mu0, double sigma, std::size_t n);

/// One-sided test: true when the sample mean is significantly *greater* than
/// mu0 at the given standard-normal quantile `z_alpha` (e.g. 1.96).
bool mean_exceeds(double sample_mean, double mu0, double sigma, std::size_t n, double z_alpha);

/// p-value of the one-sided (greater) z-test.
double one_sided_p_value(double sample_mean, double mu0, double sigma, std::size_t n);

}  // namespace rejuv::stats
