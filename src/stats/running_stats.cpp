#include "stats/running_stats.h"

#include <algorithm>
#include <cmath>

#include "common/expect.h"

namespace rejuv::stats {

void RunningStats::push(double value) noexcept {
  if (count_ == 0) {
    min_ = value;
    max_ = value;
  } else {
    min_ = std::min(min_, value);
    max_ = std::max(max_, value);
  }
  ++count_;
  const double delta = value - mean_;
  mean_ += delta / static_cast<double>(count_);
  m2_ += delta * (value - mean_);
}

void RunningStats::restore(std::uint64_t count, double mean, double m2, double min,
                           double max) noexcept {
  count_ = count;
  mean_ = mean;
  m2_ = m2;
  min_ = min;
  max_ = max;
}

void RunningStats::merge(const RunningStats& other) noexcept {
  if (other.count_ == 0) return;
  if (count_ == 0) {
    *this = other;
    return;
  }
  const double na = static_cast<double>(count_);
  const double nb = static_cast<double>(other.count_);
  const double delta = other.mean_ - mean_;
  const double total = na + nb;
  mean_ += delta * nb / total;
  m2_ += other.m2_ + delta * delta * na * nb / total;
  count_ += other.count_;
  min_ = std::min(min_, other.min_);
  max_ = std::max(max_, other.max_);
}

double RunningStats::variance() const noexcept {
  if (count_ < 2) return 0.0;
  return m2_ / static_cast<double>(count_ - 1);
}

double RunningStats::population_variance() const noexcept {
  if (count_ == 0) return 0.0;
  return m2_ / static_cast<double>(count_);
}

double RunningStats::stddev() const noexcept { return std::sqrt(variance()); }

EwmaStats::EwmaStats(double alpha) : alpha_(alpha) {
  REJUV_EXPECT(alpha > 0.0 && alpha <= 1.0, "EWMA weight must lie in (0, 1]");
}

void EwmaStats::push(double value) noexcept {
  if (count_ == 0) {
    mean_ = value;
    variance_ = 0.0;
  } else {
    // West (1979) incremental EWMA variance update.
    const double delta = value - mean_;
    mean_ += alpha_ * delta;
    variance_ = (1.0 - alpha_) * (variance_ + alpha_ * delta * delta);
  }
  ++count_;
}

double EwmaStats::stddev() const noexcept { return std::sqrt(variance_); }

}  // namespace rejuv::stats
