#include "stats/inference.h"

#include <cmath>

#include "common/expect.h"
#include "stats/normal.h"

namespace rejuv::stats {

double z_statistic(double sample_mean, double mu0, double sigma, std::size_t n) {
  REJUV_EXPECT(sigma > 0.0, "sigma must be positive");
  REJUV_EXPECT(n >= 1, "sample size must be positive");
  return (sample_mean - mu0) / (sigma / std::sqrt(static_cast<double>(n)));
}

bool mean_exceeds(double sample_mean, double mu0, double sigma, std::size_t n, double z_alpha) {
  return z_statistic(sample_mean, mu0, sigma, n) > z_alpha;
}

double one_sided_p_value(double sample_mean, double mu0, double sigma, std::size_t n) {
  return 1.0 - normal_cdf(z_statistic(sample_mean, mu0, sigma, n));
}

}  // namespace rejuv::stats
