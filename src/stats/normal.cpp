#include "stats/normal.h"

#include <cmath>

#include "common/expect.h"

namespace rejuv::stats {

namespace {
constexpr double kInvSqrt2Pi = 0.3989422804014326779399460599344;  // 1/sqrt(2*pi)
constexpr double kInvSqrt2 = 0.7071067811865475244008443621048;    // 1/sqrt(2)

/// Acklam's rational approximation to the inverse normal CDF
/// (relative error < 1.15e-9 before refinement).
double acklam_inverse(double p) {
  static constexpr double a[] = {-3.969683028665376e+01, 2.209460984245205e+02,
                                 -2.759285104469687e+02, 1.383577518672690e+02,
                                 -3.066479806614716e+01, 2.506628277459239e+00};
  static constexpr double b[] = {-5.447609879822406e+01, 1.615858368580409e+02,
                                 -1.556989798598866e+02, 6.680131188771972e+01,
                                 -1.328068155288572e+01};
  static constexpr double c[] = {-7.784894002430293e-03, -3.223964580411365e-01,
                                 -2.400758277161838e+00, -2.549732539343734e+00,
                                 4.374664141464968e+00,  2.938163982698783e+00};
  static constexpr double d[] = {7.784695709041462e-03, 3.224671290700398e-01,
                                 2.445134137142996e+00, 3.754408661907416e+00};
  constexpr double p_low = 0.02425;

  if (p < p_low) {
    const double q = std::sqrt(-2.0 * std::log(p));
    return (((((c[0] * q + c[1]) * q + c[2]) * q + c[3]) * q + c[4]) * q + c[5]) /
           ((((d[0] * q + d[1]) * q + d[2]) * q + d[3]) * q + 1.0);
  }
  if (p > 1.0 - p_low) {
    const double q = std::sqrt(-2.0 * std::log(1.0 - p));
    return -(((((c[0] * q + c[1]) * q + c[2]) * q + c[3]) * q + c[4]) * q + c[5]) /
           ((((d[0] * q + d[1]) * q + d[2]) * q + d[3]) * q + 1.0);
  }
  const double q = p - 0.5;
  const double r = q * q;
  return (((((a[0] * r + a[1]) * r + a[2]) * r + a[3]) * r + a[4]) * r + a[5]) * q /
         (((((b[0] * r + b[1]) * r + b[2]) * r + b[3]) * r + b[4]) * r + 1.0);
}
}  // namespace

double normal_pdf(double x) noexcept { return kInvSqrt2Pi * std::exp(-0.5 * x * x); }

double normal_pdf(double x, double mean, double sigma) {
  REJUV_EXPECT(sigma > 0.0, "sigma must be positive");
  return normal_pdf((x - mean) / sigma) / sigma;
}

double normal_cdf(double x) noexcept { return 0.5 * std::erfc(-x * kInvSqrt2); }

double normal_cdf(double x, double mean, double sigma) {
  REJUV_EXPECT(sigma > 0.0, "sigma must be positive");
  return normal_cdf((x - mean) / sigma);
}

double normal_quantile(double p) {
  REJUV_EXPECT(p > 0.0 && p < 1.0, "quantile probability must lie in (0, 1)");
  double x = acklam_inverse(p);
  // One Halley step against the exact CDF pushes the error to ~1 ulp.
  const double e = normal_cdf(x) - p;
  const double u = e * std::sqrt(2.0 * 3.14159265358979323846) * std::exp(0.5 * x * x);
  x -= u / (1.0 + 0.5 * x * u);
  return x;
}

double normal_quantile(double p, double mean, double sigma) {
  REJUV_EXPECT(sigma > 0.0, "sigma must be positive");
  return mean + sigma * normal_quantile(p);
}

}  // namespace rejuv::stats
