// The static software rejuvenation algorithm of Avritzer/Bondi/Weyuker [1],
// the per-observation precursor of SRAA.
//
// Each individual observation x_i is compared against the bucket target
// muX + N * sigmaX; one ball is added when x_i exceeds the target and one is
// removed otherwise. SRAA with n = 1 is sequence-equivalent (the test suite
// asserts this), but the algorithm is kept as its own type because it is the
// baseline the paper improves on and it needs no averaging window.
#pragma once

#include <string>

#include "core/bucket_cascade.h"
#include "core/detector.h"
#include "core/registry.h"

namespace rejuv::core {

/// Registry descriptor of the "Static" family (params K, D).
DetectorDescriptor static_descriptor();

class StaticRejuvenation final : public Detector {
 public:
  /// `buckets` K and `depth` D as in the paper; baseline is (muX, sigmaX).
  StaticRejuvenation(std::size_t buckets, int depth, Baseline baseline);

  Decision observe(double value) override;
  std::size_t observe_all(std::span<const double> values) override;
  void reset() override;
  std::string name() const override;
  const Baseline& baseline() const override { return baseline_; }
  obs::DetectorSnapshot snapshot() const override;
  DetectorState save_state() const override;
  void restore_state(const DetectorState& state) override;

  /// Introspection for tests and monitoring dashboards.
  const BucketCascade& cascade() const noexcept { return cascade_; }

 private:
  /// Recomputes the cached bucket target; call after every bucket move.
  void refresh_target() noexcept { target_ = baseline_.bucket_target(cascade_.bucket()); }

  Baseline baseline_;
  BucketCascade cascade_;
  double target_ = 0.0;      ///< cached muX + N * sigmaX for the current bucket
  double last_value_ = 0.0;  ///< most recent observation
};

}  // namespace rejuv::core
