#include "core/ediv.h"

#include <cmath>

#include "common/expect.h"

namespace rejuv::core {

namespace {
constexpr const char* kCheckpointTag = "EDiv.v1";
}  // namespace

DetectorDescriptor ediv_descriptor() {
  DetectorDescriptor descriptor;
  descriptor.name = "EDiv";
  descriptor.summary = "e-divisive change-point detection over a sliding window of batch means";
  descriptor.checkpoint_tag = kCheckpointTag;
  descriptor.params = {
      count_param("b", 10, "observations per batch mean"),
      count_param("w", 30, "batch means in the sliding window", 2),
      real_param("q", 10.0, "divergence statistic level that declares a change point", 0.0,
                 /*strict_min=*/true),
      count_param("g", 5, "minimum batches on either side of a split"),
  };
  descriptor.make = [](const DetectorConfig& config) -> std::unique_ptr<Detector> {
    return std::make_unique<EDiv>(
        EDivParams{config.get_count("b"), config.get_count("w"), config.get("q"),
                   config.get_count("g")},
        config.baseline);
  };
  return descriptor;
}

EDiv::EDiv(EDivParams params, Baseline baseline) : params_(params), baseline_(baseline) {
  REJUV_EXPECT(params.batch >= 1, "EDiv batch size b must be at least 1");
  REJUV_EXPECT(params.min_segment >= 1, "EDiv minimum segment g must be at least 1");
  REJUV_EXPECT(params.window >= 2 * params.min_segment,
               "EDiv window w must hold two minimum segments (w >= 2g)");
  REJUV_EXPECT(std::isfinite(params.threshold) && params.threshold > 0.0,
               "EDiv threshold q must be positive and finite");
  validate(baseline_);
  means_.reserve(params.window);
}

bool EDiv::scan_window() {
  const std::size_t w = means_.size();
  double total = 0.0;
  double total_sq = 0.0;
  for (const double m : means_) {
    total += m;
    total_sq += m * m;
  }
  const double count = static_cast<double>(w);
  double variance = (total_sq - total * total / count) / (count - 1.0);
  if (!(variance > 0.0)) return false;  // a flat window has no change point

  double best = 0.0;
  bool best_upward = false;
  double left = 0.0;
  for (std::size_t tau = 1; tau <= w - params_.min_segment; ++tau) {
    left += means_[tau - 1];
    if (tau < params_.min_segment) continue;
    const double left_count = static_cast<double>(tau);
    const double right_count = count - left_count;
    const double delta = (total - left) / right_count - left / left_count;
    const double q = (left_count * right_count / count) * delta * delta / variance;
    if (q > best) {
      best = q;
      best_upward = delta > 0.0;
    }
  }
  return best > params_.threshold && best_upward;
}

Decision EDiv::observe(double value) {
  acc_sum_ += value;
  if (++acc_count_ < params_.batch) return Decision::kContinue;
  const double mean = acc_sum_ / static_cast<double>(acc_count_);
  acc_count_ = 0;
  acc_sum_ = 0.0;
  last_average_ = mean;
  if (means_.size() == params_.window) means_.erase(means_.begin());
  means_.push_back(mean);
  if (means_.size() < params_.window) return Decision::kContinue;
  if (!scan_window()) return Decision::kContinue;
  if (tracer_ != nullptr) {
    tracer_->detector_triggered(mean, params_.threshold, /*bucket=*/-1, /*count=*/1);
  }
  means_.clear();
  return Decision::kRejuvenate;
}

void EDiv::reset() {
  acc_count_ = 0;
  acc_sum_ = 0.0;
  means_.clear();
}

DetectorState EDiv::save_state() const {
  DetectorState state = Detector::save_state();
  state.last_average = last_average_;
  state.extra_tag = kCheckpointTag;
  state.extra_u64 = {acc_count_, static_cast<std::uint64_t>(means_.size())};
  state.extra_f64.clear();
  state.extra_f64.reserve(1 + means_.size());
  state.extra_f64.push_back(acc_sum_);
  state.extra_f64.insert(state.extra_f64.end(), means_.begin(), means_.end());
  return state;
}

void EDiv::restore_state(const DetectorState& state) {
  Detector::restore_state(state);
  REJUV_EXPECT(state.extra_tag == kCheckpointTag,
               "EDiv checkpoint extension tag mismatch: \"" + state.extra_tag + "\"");
  REJUV_EXPECT(state.extra_u64.size() == 2, "EDiv checkpoint needs 2 counters");
  REJUV_EXPECT(state.extra_u64[0] < params_.batch, "EDiv checkpoint batch fill out of range");
  const std::uint64_t buffered = state.extra_u64[1];
  REJUV_EXPECT(buffered <= params_.window, "EDiv checkpoint window overflows w");
  REJUV_EXPECT(state.extra_f64.size() == 1 + buffered, "EDiv checkpoint payload size mismatch");
  acc_count_ = state.extra_u64[0];
  acc_sum_ = state.extra_f64[0];
  means_.assign(state.extra_f64.begin() + 1, state.extra_f64.end());
  last_average_ = state.last_average;
}

obs::DetectorSnapshot EDiv::snapshot() const {
  obs::DetectorSnapshot snapshot = base_snapshot();
  snapshot.sample_size = static_cast<std::uint32_t>(params_.batch);
  snapshot.pending = static_cast<std::uint32_t>(acc_count_);
  // No cascade: fill/depth report the window occupancy toward w batches.
  snapshot.fill = static_cast<std::int32_t>(means_.size());
  snapshot.depth = static_cast<std::int32_t>(params_.window);
  snapshot.last_average = last_average_;
  snapshot.current_target = params_.threshold;
  return snapshot;
}

std::string EDiv::name() const {
  return "EDiv(b=" + std::to_string(params_.batch) + ",w=" + std::to_string(params_.window) +
         ",q=" + spec_number(params_.threshold) + ",g=" + std::to_string(params_.min_segment) +
         ")";
}

}  // namespace rejuv::core
