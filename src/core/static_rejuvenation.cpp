#include "core/static_rejuvenation.h"

namespace rejuv::core {

StaticRejuvenation::StaticRejuvenation(std::size_t buckets, int depth, Baseline baseline)
    : baseline_(baseline), cascade_(depth, buckets) {
  validate(baseline_);
}

Decision StaticRejuvenation::observe(double value) {
  const bool exceeded = value > baseline_.bucket_target(cascade_.bucket());
  return cascade_.update(exceeded) == BucketCascade::Transition::kTriggered
             ? Decision::kRejuvenate
             : Decision::kContinue;
}

void StaticRejuvenation::reset() { cascade_.reset(); }

std::string StaticRejuvenation::name() const {
  return "Static(K=" + std::to_string(cascade_.bucket_count()) +
         ",D=" + std::to_string(cascade_.depth()) + ")";
}

}  // namespace rejuv::core
