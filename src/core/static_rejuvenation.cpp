#include "core/static_rejuvenation.h"

namespace rejuv::core {

DetectorDescriptor static_descriptor() {
  DetectorDescriptor descriptor;
  descriptor.name = "Static";
  descriptor.summary = "per-observation static algorithm of [1]: each value feeds the K x D bucket cascade directly";
  descriptor.params = {
      count_param("K", 1, "bucket count (degradation levels)"),
      count_param("D", 1, "bucket depth (evidence per level)"),
  };
  descriptor.make = [](const DetectorConfig& config) -> std::unique_ptr<Detector> {
    return std::make_unique<StaticRejuvenation>(
        config.get_count("K"), static_cast<int>(config.get_count("D")), config.baseline);
  };
  return descriptor;
}

StaticRejuvenation::StaticRejuvenation(std::size_t buckets, int depth, Baseline baseline)
    : baseline_(baseline), cascade_(depth, buckets) {
  validate(baseline_);
  refresh_target();
}

Decision StaticRejuvenation::observe(double value) {
  const auto bucket_before = static_cast<std::int32_t>(cascade_.bucket());
  const double target = target_;
  const bool exceeded = value > target;
  last_value_ = value;
  const auto transition = cascade_.update(exceeded);
  if (transition != BucketCascade::Transition::kNone) refresh_target();
  if (tracer_ != nullptr) {
    tracer_->sample(value, target, exceeded, static_cast<std::int32_t>(cascade_.bucket()),
                    cascade_.fill(), /*sample_size=*/1);
    switch (transition) {
      case BucketCascade::Transition::kEscalated:
        tracer_->escalated(static_cast<std::int32_t>(cascade_.bucket()), cascade_.fill(), 1);
        break;
      case BucketCascade::Transition::kDeescalated:
        tracer_->deescalated(static_cast<std::int32_t>(cascade_.bucket()), cascade_.fill(), 1);
        break;
      case BucketCascade::Transition::kTriggered:
        tracer_->detector_triggered(value, target, bucket_before,
                                    static_cast<std::int32_t>(cascade_.bucket_count()));
        break;
      case BucketCascade::Transition::kNone:
        break;
    }
  }
  return transition == BucketCascade::Transition::kTriggered ? Decision::kRejuvenate
                                                             : Decision::kContinue;
}

std::size_t StaticRejuvenation::observe_all(std::span<const double> values) {
  // Per-observation rule: no window to accumulate, but the batch path still
  // pays neither virtual dispatch nor target recomputation per value.
  if (tracer_ != nullptr) return Detector::observe_all(values);
  for (std::size_t i = 0; i < values.size(); ++i) {
    const double value = values[i];
    last_value_ = value;
    const auto transition = cascade_.update(value > target_);
    if (transition == BucketCascade::Transition::kNone) continue;
    refresh_target();
    if (transition == BucketCascade::Transition::kTriggered) return i;
  }
  return values.size();
}

void StaticRejuvenation::reset() {
  cascade_.reset();
  refresh_target();
}

DetectorState StaticRejuvenation::save_state() const {
  DetectorState state = Detector::save_state();
  state.has_cascade = true;
  state.bucket = cascade_.bucket();
  state.fill = cascade_.fill();
  state.last_average = last_value_;
  return state;
}

void StaticRejuvenation::restore_state(const DetectorState& state) {
  Detector::restore_state(state);
  cascade_.restore(static_cast<std::size_t>(state.bucket), static_cast<int>(state.fill));
  last_value_ = state.last_average;
  refresh_target();
}

obs::DetectorSnapshot StaticRejuvenation::snapshot() const {
  obs::DetectorSnapshot snapshot = base_snapshot();
  snapshot.has_cascade = true;
  snapshot.bucket = static_cast<std::int32_t>(cascade_.bucket());
  snapshot.bucket_count = static_cast<std::int32_t>(cascade_.bucket_count());
  snapshot.fill = cascade_.fill();
  snapshot.depth = cascade_.depth();
  snapshot.sample_size = 1;  // per-observation rule
  snapshot.last_average = last_value_;
  snapshot.current_target = baseline_.bucket_target(cascade_.bucket());
  return snapshot;
}

std::string StaticRejuvenation::name() const {
  return "Static(K=" + std::to_string(cascade_.bucket_count()) +
         ",D=" + std::to_string(cascade_.depth()) + ")";
}

}  // namespace rejuv::core
