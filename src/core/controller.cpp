#include "core/controller.h"

#include <algorithm>

#include "core/factory.h"

namespace rejuv::core {

RejuvenationController::RejuvenationController(std::unique_ptr<Detector> detector,
                                               std::uint64_t cooldown_observations)
    : detector_(detector != nullptr ? std::move(detector) : std::make_unique<NullDetector>()),
      noop_(dynamic_cast<const NullDetector*>(detector_.get()) != nullptr),
      cooldown_observations_(cooldown_observations) {}

void RejuvenationController::record_trigger() {
  trigger_indices_.push_back(observations_);
  cooldown_remaining_ = cooldown_observations_;
  // The snapshot is taken after the decision, i.e. it shows the reset
  // state the detector restarts from; the pre-reset evidence is in the
  // detector_triggered event emitted just before this one.
  // Guard on enabled(): taking the snapshot allocates, and the argument
  // would be evaluated even when the emitter discards it.
  if (tracer_ != nullptr && tracer_->enabled()) {
    tracer_->rejuvenation_triggered(observations_, detector_->snapshot());
  }
  if (trigger_counter_ != nullptr) trigger_counter_->increment();
}

bool RejuvenationController::observe(double value) {
  ++observations_;
  if (cooldown_remaining_ > 0) {
    --cooldown_remaining_;
    if (tracer_ != nullptr) tracer_->cooldown_suppressed(cooldown_remaining_);
    if (suppression_counter_ != nullptr) suppression_counter_->increment();
    return false;
  }
  if (detector_->observe(value) == Decision::kRejuvenate) {
    record_trigger();
    return true;
  }
  return false;
}

std::size_t RejuvenationController::observe_all(std::span<const double> values) {
  std::size_t triggers = 0;
  std::size_t consumed = 0;
  while (consumed < values.size()) {
    if (cooldown_remaining_ > 0) {
      // Per-value path: each suppressed observation emits its own
      // cooldown event, exactly as observe() would.
      observe(values[consumed]);
      ++consumed;
      continue;
    }
    const std::span<const double> rest = values.subspan(consumed);
    const std::size_t hit = detector_->observe_all(rest);
    if (hit == rest.size()) {
      observations_ += rest.size();
      break;
    }
    observations_ += hit + 1;
    consumed += hit + 1;
    record_trigger();
    ++triggers;
  }
  return triggers;
}

void RejuvenationController::notify_external_rejuvenation() {
  detector_->reset();
  cooldown_remaining_ = cooldown_observations_;
  if (tracer_ != nullptr) tracer_->external_reset();
}

void RejuvenationController::set_tracer(obs::Tracer* tracer) noexcept {
  tracer_ = tracer;
  detector_->set_tracer(tracer);
}

ControllerState RejuvenationController::save_state() const {
  ControllerState state;
  state.observations = observations_;
  state.cooldown_remaining = cooldown_remaining_;
  state.trigger_indices = trigger_indices_;
  state.detector = detector_->save_state();
  return state;
}

void RejuvenationController::restore_state(const ControllerState& state) {
  detector_->restore_state(state.detector);
  observations_ = state.observations;
  cooldown_remaining_ = state.cooldown_remaining;
  trigger_indices_ = state.trigger_indices;
}

void RejuvenationController::set_metrics(obs::MetricsRegistry* registry) {
  if (registry == nullptr) {
    trigger_counter_ = nullptr;
    suppression_counter_ = nullptr;
    return;
  }
  trigger_counter_ = &registry->counter("detector.rejuvenations_triggered");
  suppression_counter_ = &registry->counter("detector.cooldown_suppressions");
}

}  // namespace rejuv::core
