#include "core/controller.h"

#include "common/expect.h"

namespace rejuv::core {

RejuvenationController::RejuvenationController(std::unique_ptr<Detector> detector,
                                               std::uint64_t cooldown_observations)
    : detector_(std::move(detector)), cooldown_observations_(cooldown_observations) {}

bool RejuvenationController::observe(double value) {
  ++observations_;
  if (detector_ == nullptr) return false;
  if (cooldown_remaining_ > 0) {
    --cooldown_remaining_;
    return false;
  }
  if (detector_->observe(value) == Decision::kRejuvenate) {
    trigger_indices_.push_back(observations_);
    cooldown_remaining_ = cooldown_observations_;
    return true;
  }
  return false;
}

void RejuvenationController::notify_external_rejuvenation() {
  if (detector_ != nullptr) detector_->reset();
  cooldown_remaining_ = cooldown_observations_;
}

const Detector& RejuvenationController::detector() const {
  REJUV_EXPECT(detector_ != nullptr, "controller has no detector");
  return *detector_;
}

}  // namespace rejuv::core
