#include "core/controller.h"

#include "common/expect.h"

namespace rejuv::core {

RejuvenationController::RejuvenationController(std::unique_ptr<Detector> detector,
                                               std::uint64_t cooldown_observations)
    : detector_(std::move(detector)), cooldown_observations_(cooldown_observations) {}

bool RejuvenationController::observe(double value) {
  ++observations_;
  if (detector_ == nullptr) return false;
  if (cooldown_remaining_ > 0) {
    --cooldown_remaining_;
    if (tracer_ != nullptr) tracer_->cooldown_suppressed(cooldown_remaining_);
    if (suppression_counter_ != nullptr) suppression_counter_->increment();
    return false;
  }
  if (detector_->observe(value) == Decision::kRejuvenate) {
    trigger_indices_.push_back(observations_);
    cooldown_remaining_ = cooldown_observations_;
    // The snapshot is taken after the decision, i.e. it shows the reset
    // state the detector restarts from; the pre-reset evidence is in the
    // detector_triggered event emitted just before this one.
    // Guard on enabled(): taking the snapshot allocates, and the argument
    // would be evaluated even when the emitter discards it.
    if (tracer_ != nullptr && tracer_->enabled()) {
      tracer_->rejuvenation_triggered(observations_, detector_->snapshot());
    }
    if (trigger_counter_ != nullptr) trigger_counter_->increment();
    return true;
  }
  return false;
}

void RejuvenationController::notify_external_rejuvenation() {
  if (detector_ != nullptr) detector_->reset();
  cooldown_remaining_ = cooldown_observations_;
  if (tracer_ != nullptr) tracer_->external_reset();
}

const Detector& RejuvenationController::detector() const {
  REJUV_EXPECT(detector_ != nullptr, "controller has no detector");
  return *detector_;
}

obs::DetectorSnapshot RejuvenationController::detector_snapshot() const {
  if (detector_ == nullptr) {
    obs::DetectorSnapshot snapshot;
    snapshot.algorithm = "None";
    return snapshot;
  }
  return detector_->snapshot();
}

void RejuvenationController::set_tracer(obs::Tracer* tracer) noexcept {
  tracer_ = tracer;
  if (detector_ != nullptr) detector_->set_tracer(tracer);
}

void RejuvenationController::set_metrics(obs::MetricsRegistry* registry) {
  if (registry == nullptr) {
    trigger_counter_ = nullptr;
    suppression_counter_ = nullptr;
    return;
  }
  trigger_counter_ = &registry->counter("detector.rejuvenations_triggered");
  suppression_counter_ = &registry->counter("detector.cooldown_suppressions");
}

}  // namespace rejuv::core
