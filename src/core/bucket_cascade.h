// The bucket-cascade state machine shared by the static algorithm, SRAA and
// SARAA (paper Fig. 6/7).
//
// State is a bucket pointer N in [0, K) and a fill counter d in [0, D].
// Each comparison outcome moves one "ball": d increments when the metric
// exceeded the current target, decrements otherwise. d > D overflows into
// the next bucket (d resets to 0); d < 0 with N > 0 underflows back to the
// previous bucket *at full depth* (d := D); d < 0 at N = 0 clamps to 0.
// Overflowing the last bucket triggers rejuvenation and resets the cascade.
// The transitions below follow the pseudo-code line for line.
#pragma once

#include <cstddef>

namespace rejuv::core {

class BucketCascade {
 public:
  /// What a single update did to the cascade.
  enum class Transition {
    kNone,         ///< d moved within the current bucket
    kEscalated,    ///< current bucket overflowed; N increased
    kDeescalated,  ///< current bucket underflowed; N decreased
    kTriggered,    ///< last bucket overflowed; rejuvenate (state was reset)
  };

  /// `depth` D >= 1 balls per bucket; `buckets` K >= 1 buckets.
  BucketCascade(int depth, std::size_t buckets);

  /// Feeds one comparison outcome (metric exceeded the bucket target?).
  Transition update(bool exceeded);

  int fill() const noexcept { return fill_; }              ///< d
  std::size_t bucket() const noexcept { return bucket_; }  ///< N
  int depth() const noexcept { return depth_; }            ///< D
  std::size_t bucket_count() const noexcept { return bucket_count_; }  ///< K

  /// Returns to the initial state (d = 0, N = 0).
  void reset() noexcept;

  /// Restores a saved (N, d) pair (checkpoint restore). Validates the pair
  /// against this cascade's K and D.
  void restore(std::size_t bucket, int fill);

 private:
  int depth_;
  std::size_t bucket_count_;
  int fill_ = 0;
  std::size_t bucket_ = 0;
};

}  // namespace rejuv::core
