#include "core/saraa.h"

#include <cmath>

#include "common/expect.h"

namespace rejuv::core {

namespace {

DetectorDescriptor saraa_descriptor_base(bool accelerate) {
  DetectorDescriptor descriptor;
  descriptor.name = accelerate ? "SARAA" : "SARAA-noaccel";
  descriptor.summary =
      accelerate
          ? "sampling-acceleration rejuvenation: the window shrinks as degradation escalates (paper Fig. 7)"
          : "SARAA ablation: sqrt(n)-scaled targets with the window pinned at norig";
  descriptor.params = {
      count_param("n", 1, "initial averaging window size norig"),
      count_param("K", 1, "bucket count (degradation levels)"),
      count_param("D", 1, "bucket depth (evidence per level)"),
  };
  descriptor.make = [accelerate](const DetectorConfig& config) -> std::unique_ptr<Detector> {
    return std::make_unique<Saraa>(
        SaraaParams{config.get_count("n"), config.get_count("K"),
                    static_cast<int>(config.get_count("D")), accelerate},
        config.baseline);
  };
  return descriptor;
}

}  // namespace

DetectorDescriptor saraa_descriptor() { return saraa_descriptor_base(true); }

DetectorDescriptor saraa_noaccel_descriptor() { return saraa_descriptor_base(false); }

std::size_t saraa_sample_size(std::size_t norig, std::size_t bucket, std::size_t buckets) {
  REJUV_EXPECT(norig >= 1, "norig must be at least 1");
  REJUV_EXPECT(buckets >= 1, "bucket count must be at least 1");
  REJUV_EXPECT(bucket <= buckets, "bucket index out of range");
  // n := floor(1 + (norig - 1) * (1 - N/K)); always >= 1 since N <= K.
  const double value = 1.0 + static_cast<double>(norig - 1) *
                                 (1.0 - static_cast<double>(bucket) / static_cast<double>(buckets));
  return static_cast<std::size_t>(std::floor(value));
}

Saraa::Saraa(SaraaParams params, Baseline baseline)
    : params_(params),
      baseline_(baseline),
      cascade_(params.depth, params.buckets),
      window_(params.initial_sample_size),
      current_n_(params.initial_sample_size) {
  REJUV_EXPECT(params.initial_sample_size >= 1, "SARAA norig must be at least 1");
  validate(baseline_);
  refresh_target();
}

void Saraa::refresh_target() {
  target_ = baseline_.scaled_target(static_cast<double>(cascade_.bucket()), current_n_);
}

Decision Saraa::observe(double value) {
  const auto average = window_.push(value);
  if (!average) return Decision::kContinue;
  // Target uses the n that produced this average (bucket transitions only
  // ever happen on window boundaries, so current_n_ is exactly that n).
  const auto bucket_before = static_cast<std::int32_t>(cascade_.bucket());
  const double target = target_;
  const bool exceeded = *average > target;
  last_average_ = *average;
  const auto transition = cascade_.update(exceeded);
  if (tracer_ != nullptr) {
    tracer_->sample(*average, target, exceeded, static_cast<std::int32_t>(cascade_.bucket()),
                    cascade_.fill(), static_cast<std::uint32_t>(current_n_));
  }
  switch (transition) {
    case BucketCascade::Transition::kNone:
      return Decision::kContinue;
    case BucketCascade::Transition::kEscalated:
      apply_schedule();
      refresh_target();
      if (tracer_ != nullptr) {
        tracer_->escalated(static_cast<std::int32_t>(cascade_.bucket()), cascade_.fill(),
                           static_cast<std::uint32_t>(current_n_));
      }
      return Decision::kContinue;
    case BucketCascade::Transition::kDeescalated:
      apply_schedule();
      refresh_target();
      if (tracer_ != nullptr) {
        tracer_->deescalated(static_cast<std::int32_t>(cascade_.bucket()), cascade_.fill(),
                             static_cast<std::uint32_t>(current_n_));
      }
      return Decision::kContinue;
    case BucketCascade::Transition::kTriggered:
      // Fig. 7 resets n := norig alongside d and N.
      current_n_ = params_.initial_sample_size;
      window_.set_window(current_n_);
      window_.reset();
      refresh_target();
      if (tracer_ != nullptr) {
        tracer_->detector_triggered(*average, target, bucket_before,
                                    static_cast<std::int32_t>(params_.buckets));
      }
      return Decision::kRejuvenate;
  }
  return Decision::kContinue;
}

std::size_t Saraa::observe_all(std::span<const double> values) {
  // Same structure as Sraa::observe_all: the traced path keeps the event
  // stream identical by looping observe(); the untraced path accumulates
  // windows in one pass, handling the acceleration schedule only at block
  // boundaries (the only place bucket or n can change).
  if (tracer_ != nullptr) return Detector::observe_all(values);
  bool triggered = false;
  const std::size_t consumed = window_.push_all(values, [&](double average) {
    last_average_ = average;
    switch (cascade_.update(average > target_)) {
      case BucketCascade::Transition::kNone:
        return true;
      case BucketCascade::Transition::kEscalated:
      case BucketCascade::Transition::kDeescalated:
        apply_schedule();
        refresh_target();
        return true;
      case BucketCascade::Transition::kTriggered:
        current_n_ = params_.initial_sample_size;
        window_.set_window(current_n_);
        window_.reset();
        refresh_target();
        triggered = true;
        return false;
    }
    return true;
  });
  return triggered ? consumed - 1 : values.size();
}

void Saraa::apply_schedule() {
  if (!params_.accelerate) return;
  current_n_ = saraa_sample_size(params_.initial_sample_size, cascade_.bucket(), params_.buckets);
  window_.set_window(current_n_);
}

void Saraa::reset() {
  cascade_.reset();
  current_n_ = params_.initial_sample_size;
  window_.set_window(current_n_);
  window_.reset();
  refresh_target();
}

DetectorState Saraa::save_state() const {
  DetectorState state = Detector::save_state();
  state.has_cascade = true;
  state.bucket = cascade_.bucket();
  state.fill = cascade_.fill();
  state.has_window = true;
  state.window_length = window_.current_window();
  state.window_next = window_.window();
  state.window_count = window_.pending();
  state.window_sum = window_.partial_sum();
  state.current_n = current_n_;
  state.last_average = last_average_;
  return state;
}

void Saraa::restore_state(const DetectorState& state) {
  Detector::restore_state(state);
  REJUV_EXPECT(state.current_n >= 1, "SARAA checkpoint current_n must be at least 1");
  cascade_.restore(static_cast<std::size_t>(state.bucket), static_cast<int>(state.fill));
  current_n_ = static_cast<std::size_t>(state.current_n);
  window_.restore(static_cast<std::size_t>(state.window_length),
                  static_cast<std::size_t>(state.window_next),
                  static_cast<std::size_t>(state.window_count), state.window_sum);
  last_average_ = state.last_average;
  refresh_target();
}

obs::DetectorSnapshot Saraa::snapshot() const {
  obs::DetectorSnapshot snapshot = base_snapshot();
  snapshot.has_cascade = true;
  snapshot.bucket = static_cast<std::int32_t>(cascade_.bucket());
  snapshot.bucket_count = static_cast<std::int32_t>(params_.buckets);
  snapshot.fill = cascade_.fill();
  snapshot.depth = params_.depth;
  snapshot.sample_size = static_cast<std::uint32_t>(current_n_);
  snapshot.pending = static_cast<std::uint32_t>(window_.pending());
  snapshot.last_average = last_average_;
  snapshot.current_target =
      baseline_.scaled_target(static_cast<double>(cascade_.bucket()), current_n_);
  return snapshot;
}

std::string Saraa::name() const {
  return std::string("SARAA") + (params_.accelerate ? "" : "-noaccel") +
         "(n=" + std::to_string(params_.initial_sample_size) +
         ",K=" + std::to_string(params_.buckets) + ",D=" + std::to_string(params_.depth) + ")";
}

}  // namespace rejuv::core
