// The rejuvenation-detector interface.
//
// A Detector consumes the customer-affecting metric (the paper uses response
// time) one observation at a time, in completion order, and decides after
// each observation whether software rejuvenation should be carried out. The
// paper's three algorithms — SRAA, SARAA and CLTA — plus the earlier static
// algorithm of [1] all implement this interface, so the monitored system and
// the experiment harness are agnostic to the algorithm in use.
#pragma once

#include <cstddef>
#include <span>
#include <string>

#include "core/baseline.h"
#include "core/checkpoint.h"
#include "obs/detector_snapshot.h"
#include "obs/tracer.h"

namespace rejuv::core {

/// Outcome of feeding one observation to a detector.
enum class Decision {
  kContinue,     ///< no evidence of lasting degradation (yet)
  kRejuvenate,   ///< trigger the rejuvenation routine now
};

class Detector {
 public:
  virtual ~Detector() = default;

  /// Feeds one observed metric value. A kRejuvenate result means the
  /// detector has already reset its own state (as the paper's pseudo-code
  /// does inside `rejuvenation_routine(); d := 0; N := 0`).
  virtual Decision observe(double value) = 0;

  /// Feeds `values` in order, stopping at the first kRejuvenate decision.
  /// Returns the index of the triggering observation, or values.size() when
  /// the whole batch was consumed without a trigger — callers that must see
  /// every decision resume with the subspan past the returned index. The
  /// default implementation loops observe(); overrides with a cheaper batch
  /// path must produce byte-identical decisions.
  virtual std::size_t observe_all(std::span<const double> values);

  /// Resets all internal state, e.g. after an externally initiated
  /// rejuvenation, so stale evidence does not leak across restarts.
  virtual void reset() = 0;

  /// Human-readable algorithm name with parameters, e.g. "SRAA(n=2,K=5,D=3)".
  virtual std::string name() const = 0;

  /// The service-level baseline (muX, sigmaX) the detector judges against.
  virtual const Baseline& baseline() const = 0;

  /// Structured view of the internal decision state — everything the
  /// paper's Fig. 6-8 pseudo-code carries between observations (bucket N,
  /// fill d, active sample size n, last window average vs. target). The
  /// base implementation reports only name and baseline; every concrete
  /// detector overrides it with its full state.
  virtual obs::DetectorSnapshot snapshot() const;

  /// Serializes the mutable decision state for crash recovery. The base
  /// implementation records only the algorithm name (sufficient for
  /// stateless detectors); stateful detectors extend it with their cascade,
  /// partial window and calibration fields.
  virtual DetectorState save_state() const;

  /// Restores state saved by save_state() on an identically configured
  /// detector. Throws std::invalid_argument when `state.algorithm` does not
  /// match this detector's name() or a field is out of range — a checkpoint
  /// must never be silently restored into the wrong detector. A restored
  /// detector fed the stream suffix past the save point makes bit-identical
  /// decisions to an uninterrupted one fed the whole stream.
  virtual void restore_state(const DetectorState& state);

  /// Attaches a structured event tracer (nullptr detaches). The detector
  /// emits sample / escalation / trigger events through it; with no tracer
  /// — the default — the observe() hot path is unchanged. Wrapper
  /// detectors override to forward to their inner detector.
  virtual void set_tracer(obs::Tracer* tracer) noexcept { tracer_ = tracer; }

 protected:
  Detector() = default;
  Detector(const Detector&) = default;
  Detector& operator=(const Detector&) = default;

  /// snapshot() helper: name, baseline and nothing else.
  obs::DetectorSnapshot base_snapshot() const;

  obs::Tracer* tracer_ = nullptr;  ///< non-owning; nullptr = tracing off
};

}  // namespace rejuv::core
