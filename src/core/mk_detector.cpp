#include "core/mk_detector.h"

#include <cmath>

#include "common/expect.h"
#include "stats/trend.h"

namespace rejuv::core {

namespace {
constexpr const char* kCheckpointTag = "MK.v1";
}  // namespace

DetectorDescriptor mk_descriptor() {
  DetectorDescriptor descriptor;
  descriptor.name = "MK";
  descriptor.summary = "Mann-Kendall/Sen trend test per window feeding an L-level escalation cascade";
  descriptor.checkpoint_tag = kCheckpointTag;
  descriptor.params = {
      count_param("w", 30, "observations per trend-test window", 3),
      real_param("z", 1.645, "one-sided Mann-Kendall quantile for an increasing trend", 0.0),
      real_param("s", 0.0, "minimum Sen slope per observation to count as aging", 0.0),
      count_param("L", 3, "escalation levels before triggering"),
  };
  descriptor.make = [](const DetectorConfig& config) -> std::unique_ptr<Detector> {
    return std::make_unique<MkTrend>(
        MkParams{config.get_count("w"), config.get("z"), config.get("s"),
                 config.get_count("L")},
        config.baseline);
  };
  return descriptor;
}

MkTrend::MkTrend(MkParams params, Baseline baseline)
    : params_(params), baseline_(baseline), cascade_(/*depth=*/1, params.levels) {
  REJUV_EXPECT(params.window >= 3, "MK window w must be at least 3 (Mann-Kendall minimum)");
  REJUV_EXPECT(std::isfinite(params.z_alpha) && params.z_alpha >= 0.0,
               "MK quantile z must be non-negative and finite");
  REJUV_EXPECT(std::isfinite(params.min_slope) && params.min_slope >= 0.0,
               "MK slope gate s must be non-negative and finite");
  REJUV_EXPECT(params.levels >= 1, "MK level count L must be at least 1");
  validate(baseline_);
  buffer_.reserve(params.window);
}

Decision MkTrend::observe(double value) {
  buffer_.push_back(value);
  if (buffer_.size() < params_.window) return Decision::kContinue;

  const auto result = stats::mann_kendall(buffer_);
  const bool aging = result.increasing(params_.z_alpha) &&
                     stats::sen_slope(buffer_) >= params_.min_slope;
  double mean = 0.0;
  for (const double v : buffer_) mean += v;
  mean /= static_cast<double>(params_.window);
  buffer_.clear();
  last_z_ = result.z;

  const auto bucket_before = static_cast<std::int32_t>(cascade_.bucket());
  const auto transition = cascade_.update(aging);
  if (tracer_ != nullptr) {
    tracer_->sample(mean, params_.z_alpha, aging, static_cast<std::int32_t>(cascade_.bucket()),
                    cascade_.fill(), static_cast<std::uint32_t>(params_.window));
    switch (transition) {
      case BucketCascade::Transition::kEscalated:
        tracer_->escalated(static_cast<std::int32_t>(cascade_.bucket()), cascade_.fill(),
                           static_cast<std::uint32_t>(params_.window));
        break;
      case BucketCascade::Transition::kDeescalated:
        tracer_->deescalated(static_cast<std::int32_t>(cascade_.bucket()), cascade_.fill(),
                             static_cast<std::uint32_t>(params_.window));
        break;
      case BucketCascade::Transition::kTriggered:
        tracer_->detector_triggered(mean, params_.z_alpha, bucket_before,
                                    static_cast<std::int32_t>(params_.levels));
        break;
      case BucketCascade::Transition::kNone:
        break;
    }
  }
  return transition == BucketCascade::Transition::kTriggered ? Decision::kRejuvenate
                                                             : Decision::kContinue;
}

void MkTrend::reset() {
  cascade_.reset();
  buffer_.clear();
  last_z_ = 0.0;
}

DetectorState MkTrend::save_state() const {
  DetectorState state = Detector::save_state();
  state.has_cascade = true;
  state.bucket = cascade_.bucket();
  state.fill = cascade_.fill();
  state.last_average = last_z_;
  state.extra_tag = kCheckpointTag;
  state.extra_u64 = {static_cast<std::uint64_t>(buffer_.size())};
  state.extra_f64 = buffer_;
  return state;
}

void MkTrend::restore_state(const DetectorState& state) {
  Detector::restore_state(state);
  REJUV_EXPECT(state.extra_tag == kCheckpointTag,
               "MK checkpoint extension tag mismatch: \"" + state.extra_tag + "\"");
  REJUV_EXPECT(state.extra_u64.size() == 1, "MK checkpoint needs 1 counter");
  REJUV_EXPECT(state.extra_u64[0] < params_.window, "MK checkpoint buffer fill out of range");
  REJUV_EXPECT(state.extra_f64.size() == state.extra_u64[0],
               "MK checkpoint payload size mismatch");
  cascade_.restore(static_cast<std::size_t>(state.bucket), static_cast<int>(state.fill));
  buffer_ = state.extra_f64;
  last_z_ = state.last_average;
}

obs::DetectorSnapshot MkTrend::snapshot() const {
  obs::DetectorSnapshot snapshot = base_snapshot();
  snapshot.has_cascade = true;
  snapshot.bucket = static_cast<std::int32_t>(cascade_.bucket());
  snapshot.bucket_count = static_cast<std::int32_t>(params_.levels);
  snapshot.fill = cascade_.fill();
  snapshot.depth = 1;
  snapshot.sample_size = static_cast<std::uint32_t>(params_.window);
  snapshot.pending = static_cast<std::uint32_t>(buffer_.size());
  snapshot.last_average = last_z_;
  snapshot.current_target = params_.z_alpha;
  return snapshot;
}

std::string MkTrend::name() const {
  return "MK(w=" + std::to_string(params_.window) + ",z=" + spec_number(params_.z_alpha) +
         ",s=" + spec_number(params_.min_slope) + ",L=" + std::to_string(params_.levels) + ")";
}

}  // namespace rejuv::core
