// Adaptive — workload-shift-aware SRAA with baseline recalibration.
//
// The paper's detectors judge every window against a *fixed* SLA baseline
// (muX, sigmaX); under a workload shift — a new steady state at a different
// level, not aging — they either go blind (shift down) or false-alarm
// forever (shift up). Following the related-work line on adaptive detection
// of software aging under workload variation, this family wraps an SRAA
// cascade with a shift monitor: disjoint w-observation windows accumulate
// (mean, variance) into a bounded history of h windows, and once the
// history's grand mean departs from the active baseline by more than t
// sigma, a Mann-Kendall trend vote over the window means separates the two
// explanations. A *monotonically increasing* history is aging — exactly the
// signal the cascade escalates on, so the detector stays out of the way. A
// level shift without monotonic growth is a workload change: the baseline
// is recalibrated to the history (mean of means, RMS of the window sigmas),
// the cascade rebuilt against it, and detection continues at the new
// operating point.
#pragma once

#include <cstdint>
#include <memory>
#include <string>
#include <vector>

#include "core/detector.h"
#include "core/registry.h"
#include "core/sraa.h"

namespace rejuv::core {

/// Registry descriptor of the "Adaptive" family (params n, K, D, w, t, h).
DetectorDescriptor adaptive_descriptor();

/// Parameters of Adaptive: the inner SRAA triple plus the shift monitor.
struct AdaptiveParams {
  std::size_t sample_size = 2;     ///< n: inner SRAA averaging window
  std::size_t buckets = 5;         ///< K: inner SRAA bucket count
  int depth = 3;                   ///< D: inner SRAA bucket depth
  std::size_t shift_window = 30;   ///< w: observations per shift-tracking window (>= 2)
  double shift_sigmas = 2.0;       ///< t: grand-mean departure that opens the shift vote
  std::size_t history = 6;         ///< h: windows in the trend vote (>= 3 for Mann-Kendall)
};

class Adaptive final : public Detector {
 public:
  Adaptive(AdaptiveParams params, Baseline baseline);

  Decision observe(double value) override;
  void reset() override;
  std::string name() const override;
  /// The baseline currently in force (the configured one until the first
  /// recalibration).
  const Baseline& baseline() const override { return active_; }
  obs::DetectorSnapshot snapshot() const override;
  DetectorState save_state() const override;
  void restore_state(const DetectorState& state) override;
  void set_tracer(obs::Tracer* tracer) noexcept override;

  const AdaptiveParams& params() const noexcept { return params_; }
  /// Baseline recalibrations performed since construction/reset.
  std::uint64_t recalibrations() const noexcept { return recalibrations_; }
  const Sraa& inner() const noexcept { return *inner_; }

 private:
  void rebuild_inner();
  void clear_shift_state();

  AdaptiveParams params_;
  Baseline configured_;  ///< the config's baseline, restored by reset()
  Baseline active_;      ///< baseline in force (recalibrated on shifts)
  std::unique_ptr<Sraa> inner_;
  // Shift-tracking window in progress.
  std::uint64_t acc_count_ = 0;
  double acc_sum_ = 0.0;
  double acc_sumsq_ = 0.0;
  // Bounded history of completed shift windows, oldest first.
  std::vector<double> means_;
  std::vector<double> variances_;
  std::uint64_t recalibrations_ = 0;
};

}  // namespace rejuv::core
