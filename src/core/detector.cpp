#include "core/detector.h"

namespace rejuv::core {

obs::DetectorSnapshot Detector::base_snapshot() const {
  obs::DetectorSnapshot snapshot;
  snapshot.algorithm = name();
  snapshot.baseline_mean = baseline().mean;
  snapshot.baseline_stddev = baseline().stddev;
  return snapshot;
}

obs::DetectorSnapshot Detector::snapshot() const { return base_snapshot(); }

}  // namespace rejuv::core
