#include "core/detector.h"

#include "common/expect.h"

namespace rejuv::core {

std::size_t Detector::observe_all(std::span<const double> values) {
  for (std::size_t i = 0; i < values.size(); ++i) {
    if (observe(values[i]) == Decision::kRejuvenate) return i;
  }
  return values.size();
}

obs::DetectorSnapshot Detector::base_snapshot() const {
  obs::DetectorSnapshot snapshot;
  snapshot.algorithm = name();
  snapshot.baseline_mean = baseline().mean;
  snapshot.baseline_stddev = baseline().stddev;
  return snapshot;
}

obs::DetectorSnapshot Detector::snapshot() const { return base_snapshot(); }

DetectorState Detector::save_state() const {
  DetectorState state;
  state.algorithm = name();
  return state;
}

void Detector::restore_state(const DetectorState& state) {
  REJUV_EXPECT(state.algorithm == name(), "checkpoint algorithm mismatch: saved \"" +
                                              state.algorithm + "\", restoring into \"" + name() +
                                              "\"");
}

}  // namespace rejuv::core
