// Row kernels for DetectorBank: advance every lane of a same-family bank by
// one observation.
//
// All hot per-lane state is stored as IEEE doubles holding exact small
// integers (window counts, bucket pointers, fill counters), so one kernel
// shape — load, add, divide, compare, blend — covers every family and maps
// 1:1 onto both the portable loops below and the AVX2/NEON intrinsic
// versions. Bit-identity with the scalar detectors follows from the
// arithmetic being per-lane: each lane's window sum is accumulated in the
// same left-to-right order as WindowAverage::push, the average is the same
// single division, and the cascade is the same +-1 integer walk, so
// vectorizing *across* lanes never reassociates a lane's own floating-point
// work. The only values a kernel does not produce are the retargeting
// results (bucket targets, SARAA's schedule): those are flagged per lane in
// `changed` and recomputed afterwards by a scalar fixup pass that calls the
// very same Baseline::bucket_target / Baseline::scaled_target /
// saraa_sample_size functions the scalar detectors use.
//
// The cascade step is branchless: a lane whose window is not yet full gets
// delta = 0, which leaves fill in [0, D] and the bucket below K, so none of
// the escalate / de-escalate / trigger conditions can fire spuriously.
//
// Intrinsic kernels are compiled only under REJUV_SIMD (CMake option) and
// use per-function target attributes, so the rest of the translation unit
// keeps the baseline ISA; callers must still check CPU support at runtime
// (DetectorBank does, with the portable loop as the fallback).
#pragma once

#include <cstddef>
#include <cstdint>
#include <cstring>

#if defined(REJUV_SIMD)
#if defined(__x86_64__) && (defined(__GNUC__) || defined(__clang__))
#define REJUV_BANK_AVX2 1
#include <immintrin.h>
#elif defined(__aarch64__) && (defined(__GNUC__) || defined(__clang__))
#define REJUV_BANK_NEON 1
#include <arm_neon.h>
#endif
#endif

namespace rejuv::core::bank_kernel {

/// Bits of the kernel return value: which per-lane flag arrays are worth
/// scanning after the row.
inline constexpr std::uint32_t kAnyChanged = 1u;  ///< some lane needs retargeting
inline constexpr std::uint32_t kAnyTriggered = 2u;  ///< some lane rejuvenated

/// One row of input for a bank of window + cascade detectors (SRAA, SARAA).
/// All pointers address `lanes` contiguous elements of the bank's SoA state.
struct WindowCascadeRow {
  std::size_t lanes = 0;
  const double* values = nullptr;  ///< one observation per lane
  double* sum = nullptr;           ///< running window sums
  double* count = nullptr;         ///< observations in the current block
  double* wcur = nullptr;          ///< current block length
  const double* wnext = nullptr;   ///< block length after the next boundary
  const double* target = nullptr;  ///< per-lane bucket target in force
  double* fill = nullptr;          ///< cascade fill d
  double* bucket = nullptr;        ///< cascade bucket pointer N
  const double* depth = nullptr;   ///< cascade depth D
  const double* buckets = nullptr;  ///< cascade bucket count K
  double* last_avg = nullptr;      ///< most recent completed window average
  unsigned char* changed = nullptr;  ///< out: lane escalated/deescalated/triggered
  unsigned char* trig = nullptr;     ///< out: lane triggered rejuvenation
};

/// One row for a bank of per-observation cascade detectors (Static): the
/// window members of WindowCascadeRow are unused.
struct StaticRow {
  std::size_t lanes = 0;
  const double* values = nullptr;
  const double* target = nullptr;
  double* fill = nullptr;
  double* bucket = nullptr;
  const double* depth = nullptr;
  const double* buckets = nullptr;
  double* last_avg = nullptr;
  unsigned char* changed = nullptr;
  unsigned char* trig = nullptr;
};

/// One row for a bank of pure window-threshold detectors (CLTA): the
/// threshold is fixed for the detector's lifetime, so there is no fixup.
struct CltaRow {
  std::size_t lanes = 0;
  const double* values = nullptr;
  double* sum = nullptr;
  double* count = nullptr;
  double* wcur = nullptr;
  const double* wnext = nullptr;
  const double* threshold = nullptr;
  double* last_avg = nullptr;
  unsigned char* trig = nullptr;
};

// ---------------------------------------------------------------------------
// Portable kernels. Straight-line bodies with ternary selects only — written
// for if-conversion and autovectorization, and doubling as the semantic
// reference for the intrinsic versions. `first` lets the intrinsic kernels
// reuse them for the ragged tail (lanes % vector width).
// ---------------------------------------------------------------------------

inline std::uint32_t window_cascade_row_portable(const WindowCascadeRow& r,
                                                 std::size_t first = 0) {
  // The flag stores go through unsigned char*, which aliases everything; the
  // hoisted locals keep the compiler from reloading every member pointer on
  // each iteration.
  const std::size_t lanes = r.lanes;
  const double* const values = r.values;
  double* const sum = r.sum;
  double* const count = r.count;
  double* const wcur = r.wcur;
  const double* const wnext = r.wnext;
  const double* const target = r.target;
  double* const fill = r.fill;
  double* const bucket = r.bucket;
  const double* const depth = r.depth;
  const double* const buckets = r.buckets;
  double* const last_avg = r.last_avg;
  unsigned char* const changed = r.changed;
  unsigned char* const trig = r.trig;
  std::uint32_t any = 0;
  for (std::size_t l = first; l < lanes; ++l) {
    const double s = sum[l] + values[l];
    const double c = count[l] + 1.0;
    const double w = wcur[l];
    const bool done = c == w;
    const double avg = s / w;
    const bool exceeded = done && avg > target[l];
    double f = fill[l] + (done ? (exceeded ? 1.0 : -1.0) : 0.0);
    double b = bucket[l];
    const bool esc = f > depth[l];
    f = esc ? 0.0 : f;
    b = esc ? b + 1.0 : b;
    const bool deesc = f < 0.0 && b > 0.0;
    f = deesc ? depth[l] : f;
    b = deesc ? b - 1.0 : b;
    f = f < 0.0 ? 0.0 : f;
    const bool hit = b == buckets[l];
    f = hit ? 0.0 : f;
    b = hit ? 0.0 : b;
    sum[l] = done ? 0.0 : s;
    count[l] = done ? 0.0 : c;
    wcur[l] = done ? wnext[l] : w;
    last_avg[l] = done ? avg : last_avg[l];
    fill[l] = f;
    bucket[l] = b;
    const bool ch = esc || deesc || hit;
    changed[l] = static_cast<unsigned char>(ch);
    trig[l] = static_cast<unsigned char>(hit);
    any |= (ch ? kAnyChanged : 0u) | (hit ? kAnyTriggered : 0u);
  }
  return any;
}

inline std::uint32_t static_row_portable(const StaticRow& r, std::size_t first = 0) {
  const std::size_t lanes = r.lanes;
  const double* const values = r.values;
  const double* const target = r.target;
  double* const fill = r.fill;
  double* const bucket = r.bucket;
  const double* const depth = r.depth;
  const double* const buckets = r.buckets;
  double* const last_avg = r.last_avg;
  unsigned char* const changed = r.changed;
  unsigned char* const trig = r.trig;
  std::uint32_t any = 0;
  for (std::size_t l = first; l < lanes; ++l) {
    const double value = values[l];
    const bool exceeded = value > target[l];
    double f = fill[l] + (exceeded ? 1.0 : -1.0);
    double b = bucket[l];
    const bool esc = f > depth[l];
    f = esc ? 0.0 : f;
    b = esc ? b + 1.0 : b;
    const bool deesc = f < 0.0 && b > 0.0;
    f = deesc ? depth[l] : f;
    b = deesc ? b - 1.0 : b;
    f = f < 0.0 ? 0.0 : f;
    const bool hit = b == buckets[l];
    f = hit ? 0.0 : f;
    b = hit ? 0.0 : b;
    last_avg[l] = value;
    fill[l] = f;
    bucket[l] = b;
    const bool ch = esc || deesc || hit;
    changed[l] = static_cast<unsigned char>(ch);
    trig[l] = static_cast<unsigned char>(hit);
    any |= (ch ? kAnyChanged : 0u) | (hit ? kAnyTriggered : 0u);
  }
  return any;
}

inline std::uint32_t clta_row_portable(const CltaRow& r, std::size_t first = 0) {
  const std::size_t lanes = r.lanes;
  const double* const values = r.values;
  double* const sum = r.sum;
  double* const count = r.count;
  double* const wcur = r.wcur;
  const double* const wnext = r.wnext;
  const double* const threshold = r.threshold;
  double* const last_avg = r.last_avg;
  unsigned char* const trig = r.trig;
  std::uint32_t any = 0;
  for (std::size_t l = first; l < lanes; ++l) {
    const double s = sum[l] + values[l];
    const double c = count[l] + 1.0;
    const double w = wcur[l];
    const bool done = c == w;
    const double avg = s / w;
    const bool hit = done && avg > threshold[l];
    sum[l] = done ? 0.0 : s;
    count[l] = done ? 0.0 : c;
    wcur[l] = done ? wnext[l] : w;
    last_avg[l] = done ? avg : last_avg[l];
    trig[l] = static_cast<unsigned char>(hit);
    any |= hit ? kAnyTriggered : 0u;
  }
  return any;
}

// ---------------------------------------------------------------------------
// AVX2 kernels (x86-64). Four lanes per vector; add/div/compare/blend are
// all per-element IEEE operations, so each lane computes bit-identically to
// the portable loop. Per-function target attributes keep the rest of the
// binary on the baseline ISA; callers gate on __builtin_cpu_supports.
// ---------------------------------------------------------------------------

#if defined(REJUV_BANK_AVX2)

namespace detail {

/// Flag bytes for a 4-bit movemask: entry m holds one byte per mask bit,
/// little-endian, so a single 4-byte store materializes four lane flags
/// (bit-unpacking the mask in scalar code costs more than the whole vector
/// body on small cores).
alignas(64) inline constexpr std::uint32_t kMaskBytes[16] = {
    0x00000000u, 0x00000001u, 0x00000100u, 0x00000101u,
    0x00010000u, 0x00010001u, 0x00010100u, 0x00010101u,
    0x01000000u, 0x01000001u, 0x01000100u, 0x01000101u,
    0x01010000u, 0x01010001u, 0x01010100u, 0x01010101u};

/// Writes 4 mask bits as flag bytes in one word store.
inline void store_flags(unsigned char* out, std::size_t l, int mask) {
  const std::uint32_t word = kMaskBytes[mask & 0xF];
  std::memcpy(out + l, &word, sizeof(word));
}

}  // namespace detail

__attribute__((target("avx2"))) inline std::uint32_t window_cascade_row_avx2(
    const WindowCascadeRow& r) {
  // Hoisted member pointers: the flag stores alias everything through
  // unsigned char*, and without the locals the compiler reloads all ten
  // pointers from the struct on every iteration.
  const std::size_t lanes = r.lanes;
  const double* const values = r.values;
  double* const sum = r.sum;
  double* const count = r.count;
  double* const wcur = r.wcur;
  const double* const wnext = r.wnext;
  const double* const target = r.target;
  double* const fill = r.fill;
  double* const bucket = r.bucket;
  const double* const depth_p = r.depth;
  const double* const buckets_p = r.buckets;
  double* const last_avg = r.last_avg;
  unsigned char* const changed_p = r.changed;
  unsigned char* const trig_p = r.trig;
  const __m256d one = _mm256_set1_pd(1.0);
  const __m256d neg_one = _mm256_set1_pd(-1.0);
  const __m256d zero = _mm256_setzero_pd();
  unsigned any_changed = 0;
  unsigned any_trig = 0;
  std::size_t l = 0;
  for (; l + 4 <= lanes; l += 4) {
    const __m256d s = _mm256_add_pd(_mm256_loadu_pd(sum + l), _mm256_loadu_pd(values + l));
    const __m256d c = _mm256_add_pd(_mm256_loadu_pd(count + l), one);
    const __m256d w = _mm256_loadu_pd(wcur + l);
    const __m256d done = _mm256_cmp_pd(c, w, _CMP_EQ_OQ);
    const __m256d avg = _mm256_div_pd(s, w);
    const __m256d exceeded =
        _mm256_and_pd(done, _mm256_cmp_pd(avg, _mm256_loadu_pd(target + l), _CMP_GT_OQ));
    // delta = done ? (exceeded ? +1 : -1) : 0
    const __m256d delta = _mm256_and_pd(done, _mm256_blendv_pd(neg_one, one, exceeded));
    __m256d f = _mm256_add_pd(_mm256_loadu_pd(fill + l), delta);
    __m256d b = _mm256_loadu_pd(bucket + l);
    const __m256d depth = _mm256_loadu_pd(depth_p + l);
    const __m256d esc = _mm256_cmp_pd(f, depth, _CMP_GT_OQ);
    f = _mm256_andnot_pd(esc, f);
    b = _mm256_add_pd(b, _mm256_and_pd(esc, one));
    const __m256d deesc = _mm256_and_pd(_mm256_cmp_pd(f, zero, _CMP_LT_OQ),
                                        _mm256_cmp_pd(b, zero, _CMP_GT_OQ));
    f = _mm256_blendv_pd(f, depth, deesc);
    b = _mm256_sub_pd(b, _mm256_and_pd(deesc, one));
    f = _mm256_max_pd(f, zero);
    const __m256d hit = _mm256_cmp_pd(b, _mm256_loadu_pd(buckets_p + l), _CMP_EQ_OQ);
    f = _mm256_andnot_pd(hit, f);
    b = _mm256_andnot_pd(hit, b);
    _mm256_storeu_pd(sum + l, _mm256_andnot_pd(done, s));
    _mm256_storeu_pd(count + l, _mm256_andnot_pd(done, c));
    _mm256_storeu_pd(wcur + l, _mm256_blendv_pd(w, _mm256_loadu_pd(wnext + l), done));
    _mm256_storeu_pd(last_avg + l,
                     _mm256_blendv_pd(_mm256_loadu_pd(last_avg + l), avg, done));
    _mm256_storeu_pd(fill + l, f);
    _mm256_storeu_pd(bucket + l, b);
    const __m256d changed = _mm256_or_pd(_mm256_or_pd(esc, deesc), hit);
    const int cm = _mm256_movemask_pd(changed);
    const int tm = _mm256_movemask_pd(hit);
    detail::store_flags(changed_p, l, cm);
    detail::store_flags(trig_p, l, tm);
    any_changed |= static_cast<unsigned>(cm);
    any_trig |= static_cast<unsigned>(tm);
  }
  const std::uint32_t any = (any_changed != 0 ? kAnyChanged : 0u) |
                            (any_trig != 0 ? kAnyTriggered : 0u);
  return any | window_cascade_row_portable(r, l);
}

__attribute__((target("avx2"))) inline std::uint32_t static_row_avx2(const StaticRow& r) {
  const std::size_t lanes = r.lanes;
  const double* const values = r.values;
  const double* const target = r.target;
  double* const fill = r.fill;
  double* const bucket = r.bucket;
  const double* const depth_p = r.depth;
  const double* const buckets_p = r.buckets;
  double* const last_avg = r.last_avg;
  unsigned char* const changed_p = r.changed;
  unsigned char* const trig_p = r.trig;
  const __m256d one = _mm256_set1_pd(1.0);
  const __m256d neg_one = _mm256_set1_pd(-1.0);
  const __m256d zero = _mm256_setzero_pd();
  unsigned any_changed = 0;
  unsigned any_trig = 0;
  std::size_t l = 0;
  for (; l + 4 <= lanes; l += 4) {
    const __m256d v = _mm256_loadu_pd(values + l);
    const __m256d exceeded = _mm256_cmp_pd(v, _mm256_loadu_pd(target + l), _CMP_GT_OQ);
    const __m256d delta = _mm256_blendv_pd(neg_one, one, exceeded);
    __m256d f = _mm256_add_pd(_mm256_loadu_pd(fill + l), delta);
    __m256d b = _mm256_loadu_pd(bucket + l);
    const __m256d depth = _mm256_loadu_pd(depth_p + l);
    const __m256d esc = _mm256_cmp_pd(f, depth, _CMP_GT_OQ);
    f = _mm256_andnot_pd(esc, f);
    b = _mm256_add_pd(b, _mm256_and_pd(esc, one));
    const __m256d deesc = _mm256_and_pd(_mm256_cmp_pd(f, zero, _CMP_LT_OQ),
                                        _mm256_cmp_pd(b, zero, _CMP_GT_OQ));
    f = _mm256_blendv_pd(f, depth, deesc);
    b = _mm256_sub_pd(b, _mm256_and_pd(deesc, one));
    f = _mm256_max_pd(f, zero);
    const __m256d hit = _mm256_cmp_pd(b, _mm256_loadu_pd(buckets_p + l), _CMP_EQ_OQ);
    f = _mm256_andnot_pd(hit, f);
    b = _mm256_andnot_pd(hit, b);
    _mm256_storeu_pd(last_avg + l, v);
    _mm256_storeu_pd(fill + l, f);
    _mm256_storeu_pd(bucket + l, b);
    const __m256d changed = _mm256_or_pd(_mm256_or_pd(esc, deesc), hit);
    const int cm = _mm256_movemask_pd(changed);
    const int tm = _mm256_movemask_pd(hit);
    detail::store_flags(changed_p, l, cm);
    detail::store_flags(trig_p, l, tm);
    any_changed |= static_cast<unsigned>(cm);
    any_trig |= static_cast<unsigned>(tm);
  }
  const std::uint32_t any = (any_changed != 0 ? kAnyChanged : 0u) |
                            (any_trig != 0 ? kAnyTriggered : 0u);
  return any | static_row_portable(r, l);
}

__attribute__((target("avx2"))) inline std::uint32_t clta_row_avx2(const CltaRow& r) {
  const std::size_t lanes = r.lanes;
  const double* const values = r.values;
  double* const sum = r.sum;
  double* const count = r.count;
  double* const wcur = r.wcur;
  const double* const wnext = r.wnext;
  const double* const threshold = r.threshold;
  double* const last_avg = r.last_avg;
  unsigned char* const trig_p = r.trig;
  const __m256d one = _mm256_set1_pd(1.0);
  unsigned any_trig = 0;
  std::size_t l = 0;
  for (; l + 4 <= lanes; l += 4) {
    const __m256d s = _mm256_add_pd(_mm256_loadu_pd(sum + l), _mm256_loadu_pd(values + l));
    const __m256d c = _mm256_add_pd(_mm256_loadu_pd(count + l), one);
    const __m256d w = _mm256_loadu_pd(wcur + l);
    const __m256d done = _mm256_cmp_pd(c, w, _CMP_EQ_OQ);
    const __m256d avg = _mm256_div_pd(s, w);
    const __m256d hit =
        _mm256_and_pd(done, _mm256_cmp_pd(avg, _mm256_loadu_pd(threshold + l), _CMP_GT_OQ));
    _mm256_storeu_pd(sum + l, _mm256_andnot_pd(done, s));
    _mm256_storeu_pd(count + l, _mm256_andnot_pd(done, c));
    _mm256_storeu_pd(wcur + l, _mm256_blendv_pd(w, _mm256_loadu_pd(wnext + l), done));
    _mm256_storeu_pd(last_avg + l,
                     _mm256_blendv_pd(_mm256_loadu_pd(last_avg + l), avg, done));
    const int tm = _mm256_movemask_pd(hit);
    detail::store_flags(trig_p, l, tm);
    any_trig |= static_cast<unsigned>(tm);
  }
  const std::uint32_t any = any_trig != 0 ? kAnyTriggered : 0u;
  return any | clta_row_portable(r, l);
}

#endif  // REJUV_BANK_AVX2

// ---------------------------------------------------------------------------
// NEON kernels (aarch64). Two lanes per vector, same per-element IEEE
// operations. Only the window kernel is written in intrinsics — the cascade
// families rely on the portable loop, which GCC/Clang if-convert and
// autovectorize on NEON targets.
// ---------------------------------------------------------------------------

#if defined(REJUV_BANK_NEON)

inline std::uint32_t clta_row_neon(const CltaRow& r) {
  const float64x2_t one = vdupq_n_f64(1.0);
  const float64x2_t zero = vdupq_n_f64(0.0);
  std::uint32_t any = 0;
  std::size_t l = 0;
  for (; l + 2 <= r.lanes; l += 2) {
    const float64x2_t s = vaddq_f64(vld1q_f64(r.sum + l), vld1q_f64(r.values + l));
    const float64x2_t c = vaddq_f64(vld1q_f64(r.count + l), one);
    const float64x2_t w = vld1q_f64(r.wcur + l);
    const uint64x2_t done = vceqq_f64(c, w);
    const float64x2_t avg = vdivq_f64(s, w);
    const uint64x2_t hit = vandq_u64(done, vcgtq_f64(avg, vld1q_f64(r.threshold + l)));
    vst1q_f64(r.sum + l, vbslq_f64(done, zero, s));
    vst1q_f64(r.count + l, vbslq_f64(done, zero, c));
    vst1q_f64(r.wcur + l, vbslq_f64(done, vld1q_f64(r.wnext + l), w));
    vst1q_f64(r.last_avg + l, vbslq_f64(done, avg, vld1q_f64(r.last_avg + l)));
    const std::uint64_t t0 = vgetq_lane_u64(hit, 0);
    const std::uint64_t t1 = vgetq_lane_u64(hit, 1);
    r.trig[l + 0] = static_cast<unsigned char>(t0 != 0);
    r.trig[l + 1] = static_cast<unsigned char>(t1 != 0);
    any |= (t0 | t1) != 0 ? kAnyTriggered : 0u;
  }
  return any | clta_row_portable(r, l);
}

#endif  // REJUV_BANK_NEON

}  // namespace rejuv::core::bank_kernel
