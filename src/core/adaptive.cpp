#include "core/adaptive.h"

#include <cmath>

#include "common/expect.h"
#include "stats/trend.h"

namespace rejuv::core {

namespace {
constexpr const char* kCheckpointTag = "Adaptive.v1";
}  // namespace

DetectorDescriptor adaptive_descriptor() {
  DetectorDescriptor descriptor;
  descriptor.name = "Adaptive";
  descriptor.summary = "SRAA wrapped with workload-shift detection and baseline recalibration";
  descriptor.checkpoint_tag = kCheckpointTag;
  descriptor.params = {
      count_param("n", 2, "inner SRAA averaging window size"),
      count_param("K", 5, "inner SRAA bucket count"),
      count_param("D", 3, "inner SRAA bucket depth"),
      count_param("w", 30, "observations per shift-tracking window", 2),
      real_param("t", 2.0, "grand-mean departure (in sigmaX) that opens the shift vote", 0.0,
                 /*strict_min=*/true),
      count_param("h", 6, "shift windows in the Mann-Kendall trend vote", 3),
  };
  descriptor.make = [](const DetectorConfig& config) -> std::unique_ptr<Detector> {
    return std::make_unique<Adaptive>(
        AdaptiveParams{config.get_count("n"), config.get_count("K"),
                       static_cast<int>(config.get_count("D")), config.get_count("w"),
                       config.get("t"), config.get_count("h")},
        config.baseline);
  };
  return descriptor;
}

Adaptive::Adaptive(AdaptiveParams params, Baseline baseline)
    : params_(params), configured_(baseline), active_(baseline) {
  REJUV_EXPECT(params.shift_window >= 2, "Adaptive shift window w must be at least 2");
  REJUV_EXPECT(params.history >= 3, "Adaptive history h must be at least 3 (Mann-Kendall)");
  REJUV_EXPECT(std::isfinite(params.shift_sigmas) && params.shift_sigmas > 0.0,
               "Adaptive shift threshold t must be positive and finite");
  validate(active_);
  means_.reserve(params.history);
  variances_.reserve(params.history);
  rebuild_inner();
}

void Adaptive::rebuild_inner() {
  inner_ = std::make_unique<Sraa>(
      SraaParams{params_.sample_size, params_.buckets, params_.depth}, active_);
  inner_->set_tracer(tracer_);
}

void Adaptive::clear_shift_state() {
  acc_count_ = 0;
  acc_sum_ = 0.0;
  acc_sumsq_ = 0.0;
  means_.clear();
  variances_.clear();
}

Decision Adaptive::observe(double value) {
  const Decision decision = inner_->observe(value);
  if (decision == Decision::kRejuvenate) {
    // Rejuvenation restarts the system: any evidence of a shift belongs to
    // the process that was just torn down.
    clear_shift_state();
    return decision;
  }

  acc_sum_ += value;
  acc_sumsq_ += value * value;
  if (++acc_count_ < params_.shift_window) return Decision::kContinue;

  const double count = static_cast<double>(acc_count_);
  const double mean = acc_sum_ / count;
  double variance = (acc_sumsq_ - acc_sum_ * acc_sum_ / count) / (count - 1.0);
  if (variance < 0.0) variance = 0.0;  // cancellation on near-constant input
  acc_count_ = 0;
  acc_sum_ = 0.0;
  acc_sumsq_ = 0.0;
  if (means_.size() == params_.history) {
    means_.erase(means_.begin());
    variances_.erase(variances_.begin());
  }
  means_.push_back(mean);
  variances_.push_back(variance);
  if (means_.size() < params_.history) return Decision::kContinue;

  double grand_mean = 0.0;
  for (const double m : means_) grand_mean += m;
  grand_mean /= static_cast<double>(means_.size());
  if (std::abs(grand_mean - active_.mean) <= params_.shift_sigmas * active_.stddev) {
    return Decision::kContinue;
  }
  // The history sits at a different level than the baseline. A monotonic
  // upward trend across it is aging — leave it to the cascade; a trendless
  // level change is a workload shift — recalibrate and carry on.
  if (stats::mann_kendall(means_).increasing()) return Decision::kContinue;

  double mean_variance = 0.0;
  for (const double v : variances_) mean_variance += v;
  mean_variance /= static_cast<double>(variances_.size());
  const double sigma = std::sqrt(mean_variance);
  active_.mean = grand_mean;
  if (sigma > 0.0) active_.stddev = sigma;  // keep the old sigma on degenerate input
  ++recalibrations_;
  rebuild_inner();
  means_.clear();
  variances_.clear();
  return Decision::kContinue;
}

void Adaptive::reset() {
  active_ = configured_;
  recalibrations_ = 0;
  clear_shift_state();
  rebuild_inner();
}

void Adaptive::set_tracer(obs::Tracer* tracer) noexcept {
  tracer_ = tracer;
  inner_->set_tracer(tracer);
}

DetectorState Adaptive::save_state() const {
  // The inner SRAA's cascade and window land in the flat fields; everything
  // the shift monitor owns goes into the tagged extension payload.
  DetectorState state = inner_->save_state();
  state.algorithm = name();
  state.extra_tag = kCheckpointTag;
  state.extra_u64 = {acc_count_, static_cast<std::uint64_t>(means_.size()), recalibrations_};
  state.extra_f64.clear();
  state.extra_f64.reserve(4 + 2 * means_.size());
  state.extra_f64.push_back(acc_sum_);
  state.extra_f64.push_back(acc_sumsq_);
  state.extra_f64.push_back(active_.mean);
  state.extra_f64.push_back(active_.stddev);
  state.extra_f64.insert(state.extra_f64.end(), means_.begin(), means_.end());
  state.extra_f64.insert(state.extra_f64.end(), variances_.begin(), variances_.end());
  return state;
}

void Adaptive::restore_state(const DetectorState& state) {
  Detector::restore_state(state);
  REJUV_EXPECT(state.extra_tag == kCheckpointTag,
               "Adaptive checkpoint extension tag mismatch: \"" + state.extra_tag + "\"");
  REJUV_EXPECT(state.extra_u64.size() == 3, "Adaptive checkpoint needs 3 counters");
  const std::uint64_t history_size = state.extra_u64[1];
  REJUV_EXPECT(history_size <= params_.history, "Adaptive checkpoint history overflows h");
  REJUV_EXPECT(state.extra_u64[0] < params_.shift_window,
               "Adaptive checkpoint window fill out of range");
  REJUV_EXPECT(state.extra_f64.size() == 4 + 2 * history_size,
               "Adaptive checkpoint payload size mismatch");
  acc_count_ = state.extra_u64[0];
  recalibrations_ = state.extra_u64[2];
  acc_sum_ = state.extra_f64[0];
  acc_sumsq_ = state.extra_f64[1];
  active_ = Baseline{state.extra_f64[2], state.extra_f64[3]};
  validate(active_);
  const auto* history = state.extra_f64.data() + 4;
  means_.assign(history, history + history_size);
  variances_.assign(history + history_size, history + 2 * history_size);
  rebuild_inner();
  DetectorState inner_state = state;
  inner_state.algorithm = inner_->name();
  inner_->restore_state(inner_state);
}

obs::DetectorSnapshot Adaptive::snapshot() const {
  obs::DetectorSnapshot snapshot = inner_->snapshot();
  snapshot.algorithm = name();
  return snapshot;
}

std::string Adaptive::name() const {
  return "Adaptive(n=" + std::to_string(params_.sample_size) +
         ",K=" + std::to_string(params_.buckets) + ",D=" + std::to_string(params_.depth) +
         ",w=" + std::to_string(params_.shift_window) + ",t=" + spec_number(params_.shift_sigmas) +
         ",h=" + std::to_string(params_.history) + ")";
}

}  // namespace rejuv::core
