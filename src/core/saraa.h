// SARAA — sampling-acceleration rejuvenation algorithm with averaging
// (paper Fig. 7).
//
// Like SRAA, window averages feed a bucket cascade, but (a) targets use the
// standard deviation of the sampling average, muX + N * sigmaX / sqrt(n),
// because the algorithm tests "has the distribution moved at all" rather
// than "has it moved by K-1 sigma"; and (b) the window shrinks linearly as
// degradation escalates, n = floor(1 + (norig - 1) * (1 - N/K)), so that
// once evidence of degradation exists, less time is spent collecting each
// subsequent sample. The window size is recomputed on every bucket
// transition and restored to norig after a rejuvenation.
#pragma once

#include <string>

#include "core/bucket_cascade.h"
#include "core/detector.h"
#include "core/registry.h"
#include "stats/quantiles.h"

namespace rejuv::core {

/// Registry descriptors of the "SARAA" family and its no-acceleration
/// ablation "SARAA-noaccel" (params n, K, D; the ablation is its own family
/// so the name round-trips through the schema).
DetectorDescriptor saraa_descriptor();
DetectorDescriptor saraa_noaccel_descriptor();

/// Parameters of SARAA: initial window size norig, bucket count K, depth D.
struct SaraaParams {
  std::size_t initial_sample_size = 1;  ///< norig
  std::size_t buckets = 1;              ///< K
  int depth = 1;                        ///< D
  /// Design-choice ablation switch: false pins the window at norig while
  /// keeping SARAA's sqrt(n)-scaled targets, isolating the effect of the
  /// sampling acceleration itself. The paper's algorithm is `true`.
  bool accelerate = true;
};

/// The paper's acceleration schedule: sample size for bucket N.
std::size_t saraa_sample_size(std::size_t norig, std::size_t bucket, std::size_t buckets);

class Saraa final : public Detector {
 public:
  Saraa(SaraaParams params, Baseline baseline);

  Decision observe(double value) override;
  std::size_t observe_all(std::span<const double> values) override;
  void reset() override;
  std::string name() const override;
  const Baseline& baseline() const override { return baseline_; }
  obs::DetectorSnapshot snapshot() const override;
  DetectorState save_state() const override;
  void restore_state(const DetectorState& state) override;

  const SaraaParams& params() const noexcept { return params_; }
  const BucketCascade& cascade() const noexcept { return cascade_; }
  /// Window size currently in force (depends on the bucket pointer N).
  std::size_t current_sample_size() const noexcept { return current_n_; }
  std::size_t pending_observations() const noexcept { return window_.pending(); }

 private:
  void apply_schedule();
  /// Recomputes the cached target muX + N * sigmaX / sqrt(n); call after
  /// every bucket transition or sample-size change (this is where the sqrt
  /// lives — hoisted out of the per-window path).
  void refresh_target();

  SaraaParams params_;
  Baseline baseline_;
  BucketCascade cascade_;
  stats::WindowAverage window_;
  std::size_t current_n_;
  double target_ = 0.0;        ///< cached scaled target for (bucket, n)
  double last_average_ = 0.0;  ///< most recent completed window average
};

}  // namespace rejuv::core
