#include "core/extensions.h"

#include <algorithm>

#include "common/expect.h"

namespace rejuv::core {

QuantileThresholdDetector::QuantileThresholdDetector(double threshold,
                                                     std::uint64_t consecutive_exceedances,
                                                     Baseline baseline)
    : threshold_(threshold), required_(consecutive_exceedances), baseline_(baseline) {
  REJUV_EXPECT(threshold > 0.0, "threshold must be positive");
  REJUV_EXPECT(consecutive_exceedances >= 1, "need at least one exceedance");
  validate(baseline_);
}

Decision QuantileThresholdDetector::observe(double value) {
  last_value_ = value;
  if (value > threshold_) {
    ++run_length_;
    if (run_length_ >= required_) {
      run_length_ = 0;
      if (tracer_ != nullptr) {
        tracer_->detector_triggered(value, threshold_, /*bucket=*/-1, /*count=*/1);
      }
      return Decision::kRejuvenate;
    }
  } else {
    run_length_ = 0;
  }
  return Decision::kContinue;
}

void QuantileThresholdDetector::reset() { run_length_ = 0; }

obs::DetectorSnapshot QuantileThresholdDetector::snapshot() const {
  obs::DetectorSnapshot snapshot = base_snapshot();
  snapshot.fill = static_cast<std::int32_t>(run_length_);   // exceedance run so far
  snapshot.depth = static_cast<std::int32_t>(required_);
  snapshot.sample_size = 1;
  snapshot.last_average = last_value_;
  snapshot.current_target = threshold_;
  return snapshot;
}

std::string QuantileThresholdDetector::name() const {
  return "QuantileThreshold(x=" + std::to_string(threshold_).substr(0, 5) +
         ",r=" + std::to_string(required_) + ")";
}

DeterministicThresholdPolicy::DeterministicThresholdPolicy(double max_degradation_level,
                                                           Baseline baseline)
    : max_level_(max_degradation_level), baseline_(baseline) {
  REJUV_EXPECT(max_degradation_level > 0.0, "threshold must be positive");
  validate(baseline_);
}

Decision DeterministicThresholdPolicy::observe(double value) {
  last_value_ = value;
  if (value >= max_level_) {
    if (tracer_ != nullptr) {
      tracer_->detector_triggered(value, max_level_, /*bucket=*/-1, /*count=*/1);
    }
    return Decision::kRejuvenate;
  }
  return Decision::kContinue;
}

obs::DetectorSnapshot DeterministicThresholdPolicy::snapshot() const {
  obs::DetectorSnapshot snapshot = base_snapshot();
  snapshot.sample_size = 1;
  snapshot.last_average = last_value_;
  snapshot.current_target = max_level_;
  return snapshot;
}

std::string DeterministicThresholdPolicy::name() const {
  return "Bobbio-deterministic(L=" + std::to_string(max_level_).substr(0, 5) + ")";
}

RiskBasedPolicy::RiskBasedPolicy(double confidence_level, double max_degradation_level,
                                 Baseline baseline, std::uint64_t seed)
    : confidence_level_(confidence_level),
      max_level_(max_degradation_level),
      baseline_(baseline),
      rng_(seed, /*stream_id=*/0xB0BB10) {
  REJUV_EXPECT(confidence_level > 0.0, "confidence level must be positive");
  REJUV_EXPECT(max_degradation_level > confidence_level,
               "maximum level must exceed the confidence level");
  validate(baseline_);
}

double RiskBasedPolicy::rejuvenation_probability(double value) const {
  if (value < confidence_level_) return 0.0;
  if (value >= max_level_) return 1.0;
  return (value - confidence_level_) / (max_level_ - confidence_level_);
}

Decision RiskBasedPolicy::observe(double value) {
  last_value_ = value;
  const double p = rejuvenation_probability(value);
  const bool trigger = p >= 1.0 || (p > 0.0 && rng_.uniform01() < p);
  if (trigger && tracer_ != nullptr) {
    tracer_->detector_triggered(value, confidence_level_, /*bucket=*/-1, /*count=*/1);
  }
  return trigger ? Decision::kRejuvenate : Decision::kContinue;
}

obs::DetectorSnapshot RiskBasedPolicy::snapshot() const {
  obs::DetectorSnapshot snapshot = base_snapshot();
  snapshot.sample_size = 1;
  snapshot.last_average = last_value_;
  snapshot.current_target = max_level_;
  return snapshot;
}

std::string RiskBasedPolicy::name() const {
  return "Bobbio-risk(c=" + std::to_string(confidence_level_).substr(0, 5) +
         ",L=" + std::to_string(max_level_).substr(0, 5) + ")";
}

AdaptiveQuantileDetector::AdaptiveQuantileDetector(double quantile,
                                                   std::uint64_t calibration_size,
                                                   std::uint64_t consecutive_exceedances,
                                                   Baseline baseline)
    : quantile_p_(quantile),
      calibration_size_(calibration_size),
      required_(consecutive_exceedances),
      baseline_(baseline),
      estimator_(quantile) {
  REJUV_EXPECT(calibration_size >= 100, "quantile calibration needs at least 100 observations");
  REJUV_EXPECT(consecutive_exceedances >= 1, "need at least one exceedance");
  validate(baseline_);
}

Decision AdaptiveQuantileDetector::observe(double value) {
  last_value_ = value;
  if (!calibrated()) {
    estimator_.push(value);
    if (calibrated()) threshold_ = estimator_.quantile();
    return Decision::kContinue;
  }
  if (value > threshold_) {
    ++run_length_;
    if (run_length_ >= required_) {
      run_length_ = 0;
      if (tracer_ != nullptr) {
        tracer_->detector_triggered(value, threshold_, /*bucket=*/-1, /*count=*/1);
      }
      return Decision::kRejuvenate;
    }
  } else {
    run_length_ = 0;
  }
  return Decision::kContinue;
}

void AdaptiveQuantileDetector::reset() { run_length_ = 0; }

obs::DetectorSnapshot AdaptiveQuantileDetector::snapshot() const {
  obs::DetectorSnapshot snapshot = base_snapshot();
  snapshot.fill = static_cast<std::int32_t>(run_length_);
  snapshot.depth = static_cast<std::int32_t>(required_);
  snapshot.sample_size = 1;
  // While calibrating, pending counts observations consumed toward the
  // calibration window and the target is not yet meaningful.
  snapshot.pending =
      calibrated() ? 0 : static_cast<std::uint32_t>(estimator_.count());
  snapshot.last_average = last_value_;
  snapshot.current_target = calibrated() ? threshold_ : 0.0;
  return snapshot;
}

double AdaptiveQuantileDetector::threshold() const {
  REJUV_EXPECT(calibrated(), "threshold requested before calibration completed");
  return threshold_;
}

std::string AdaptiveQuantileDetector::name() const {
  return "AdaptiveQuantile(p=" + std::to_string(quantile_p_).substr(0, 5) +
         ",r=" + std::to_string(required_) + ")";
}

TrendDetector::TrendDetector(std::size_t window, double z_alpha, double min_slope,
                             Baseline baseline)
    : window_(window), z_alpha_(z_alpha), min_slope_(min_slope), baseline_(baseline) {
  REJUV_EXPECT(window >= 3, "trend window needs at least 3 observations");
  REJUV_EXPECT(z_alpha > 0.0, "z_alpha must be positive");
  REJUV_EXPECT(min_slope >= 0.0, "minimum slope must be non-negative");
  validate(baseline_);
  buffer_.reserve(window);
}

Decision TrendDetector::observe(double value) {
  last_value_ = value;
  buffer_.push_back(value);
  if (buffer_.size() < window_) return Decision::kContinue;
  const auto test = stats::mann_kendall(buffer_);
  const double slope = stats::sen_slope(buffer_);
  buffer_.clear();
  if (test.increasing(z_alpha_) && slope >= min_slope_) {
    if (tracer_ != nullptr) {
      tracer_->detector_triggered(slope, min_slope_, /*bucket=*/-1, /*count=*/1);
    }
    return Decision::kRejuvenate;
  }
  return Decision::kContinue;
}

void TrendDetector::reset() { buffer_.clear(); }

obs::DetectorSnapshot TrendDetector::snapshot() const {
  obs::DetectorSnapshot snapshot = base_snapshot();
  snapshot.sample_size = static_cast<std::uint32_t>(window_);
  snapshot.pending = static_cast<std::uint32_t>(buffer_.size());
  snapshot.last_average = last_value_;
  snapshot.current_target = min_slope_;
  return snapshot;
}

std::string TrendDetector::name() const {
  return "Trend(w=" + std::to_string(window_) + ",z=" + std::to_string(z_alpha_).substr(0, 4) +
         ")";
}

}  // namespace rejuv::core
