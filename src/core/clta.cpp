#include "core/clta.h"

#include "common/expect.h"

namespace rejuv::core {

DetectorDescriptor clta_descriptor() {
  DetectorDescriptor descriptor;
  descriptor.name = "CLTA";
  descriptor.summary = "central-limit-theorem algorithm: one n-window average against muX + z * sigmaX / sqrt(n) (paper Fig. 8)";
  descriptor.params = {
      count_param("n", 1, "averaging window size (30 for the normal approximation)"),
      real_param("z", 1.96, "standard-normal quantile for the false-alarm budget", 0.0,
                 /*strict_min=*/true),
  };
  descriptor.make = [](const DetectorConfig& config) -> std::unique_ptr<Detector> {
    return std::make_unique<Clta>(CltaParams{config.get_count("n"), config.get("z")},
                                  config.baseline);
  };
  return descriptor;
}

Clta::Clta(CltaParams params, Baseline baseline)
    : params_(params),
      baseline_(baseline),
      window_(params.sample_size),
      threshold_(0.0) {
  REJUV_EXPECT(params.sample_size >= 1, "CLTA sample size n must be at least 1");
  REJUV_EXPECT(params.quantile_z > 0.0, "CLTA quantile z must be positive");
  validate(baseline_);
  threshold_ = baseline_.scaled_target(params_.quantile_z, params_.sample_size);
}

Decision Clta::observe(double value) {
  const auto average = window_.push(value);
  if (!average) return Decision::kContinue;
  last_average_ = *average;
  const bool exceeded = *average > threshold_;
  if (tracer_ != nullptr) {
    tracer_->sample(*average, threshold_, exceeded, /*bucket=*/-1, /*fill=*/0,
                    static_cast<std::uint32_t>(params_.sample_size));
    if (exceeded) tracer_->detector_triggered(*average, threshold_, /*bucket=*/-1, /*count=*/1);
  }
  if (exceeded) {
    window_.reset();
    return Decision::kRejuvenate;
  }
  return Decision::kContinue;
}

std::size_t Clta::observe_all(std::span<const double> values) {
  // Untraced batch path: the threshold is fixed for the detector's whole
  // lifetime, so each window is one vectorizable accumulation plus a single
  // compare at the boundary. The traced path loops observe() to keep the
  // event stream identical.
  if (tracer_ != nullptr) return Detector::observe_all(values);
  bool triggered = false;
  const std::size_t consumed = window_.push_all(values, [&](double average) {
    last_average_ = average;
    if (average > threshold_) {
      window_.reset();
      triggered = true;
      return false;
    }
    return true;
  });
  return triggered ? consumed - 1 : values.size();
}

void Clta::reset() { window_.reset(); }

DetectorState Clta::save_state() const {
  DetectorState state = Detector::save_state();
  state.has_window = true;
  state.window_length = window_.current_window();
  state.window_next = window_.window();
  state.window_count = window_.pending();
  state.window_sum = window_.partial_sum();
  state.last_average = last_average_;
  return state;
}

void Clta::restore_state(const DetectorState& state) {
  Detector::restore_state(state);
  window_.restore(static_cast<std::size_t>(state.window_length),
                  static_cast<std::size_t>(state.window_next),
                  static_cast<std::size_t>(state.window_count), state.window_sum);
  last_average_ = state.last_average;
}

obs::DetectorSnapshot Clta::snapshot() const {
  obs::DetectorSnapshot snapshot = base_snapshot();
  snapshot.sample_size = static_cast<std::uint32_t>(params_.sample_size);
  snapshot.pending = static_cast<std::uint32_t>(window_.pending());
  snapshot.last_average = last_average_;
  snapshot.current_target = threshold_;
  return snapshot;
}

std::string Clta::name() const {
  // z in shortest round-trip form so name() == describe(config) and the
  // spec string parses back to the identical quantile (the old fixed
  // 4-character form was lossy for z values like 1.645).
  return "CLTA(n=" + std::to_string(params_.sample_size) + ",z=" + spec_number(params_.quantile_z) +
         ")";
}

}  // namespace rejuv::core
