#include "core/entropy_detector.h"

#include <cmath>

#include "common/expect.h"

namespace rejuv::core {

namespace {
constexpr const char* kCheckpointTag = "Entropy.v1";
}  // namespace

DetectorDescriptor entropy_descriptor() {
  DetectorDescriptor descriptor;
  descriptor.name = "Entropy";
  descriptor.summary = "entropy-of-response-time aging signal: histogram shape drift vs a learned reference";
  descriptor.checkpoint_tag = kCheckpointTag;
  descriptor.params = {
      count_param("w", 50, "observations per entropy window", 2),
      count_param("m", 10, "histogram bins over muX +/- 2 sigmaX", 2),
      count_param("c", 4, "calibration windows for the entropy reference"),
      real_param("t", 0.15, "entropy deviation |H - H_ref| that counts as evidence", 0.0,
                 /*strict_min=*/true),
      count_param("r", 2, "consecutive deviating windows to trigger"),
  };
  descriptor.make = [](const DetectorConfig& config) -> std::unique_ptr<Detector> {
    return std::make_unique<Entropy>(
        EntropyParams{config.get_count("w"), config.get_count("m"), config.get_count("c"),
                      config.get("t"), config.get_count("r")},
        config.baseline);
  };
  return descriptor;
}

Entropy::Entropy(EntropyParams params, Baseline baseline)
    : params_(params), baseline_(baseline) {
  REJUV_EXPECT(params.window >= 2, "Entropy window w must be at least 2");
  REJUV_EXPECT(params.bins >= 2, "Entropy bin count m must be at least 2");
  REJUV_EXPECT(params.calibration >= 1, "Entropy calibration c must be at least 1");
  REJUV_EXPECT(params.run >= 1, "Entropy run length r must be at least 1");
  REJUV_EXPECT(std::isfinite(params.threshold) && params.threshold > 0.0,
               "Entropy threshold t must be positive and finite");
  validate(baseline_);
  bin_low_ = baseline_.mean - 2.0 * baseline_.stddev;
  bin_width_ = 4.0 * baseline_.stddev / static_cast<double>(params_.bins);
  counts_.assign(params_.bins, 0);
}

std::size_t Entropy::bin_index(double value) const noexcept {
  if (value < bin_low_) return 0;
  const double offset = (value - bin_low_) / bin_width_;
  const auto index = static_cast<std::size_t>(offset);
  return index >= params_.bins ? params_.bins - 1 : index;
}

double Entropy::window_entropy() const noexcept {
  double entropy = 0.0;
  const double total = static_cast<double>(params_.window);
  for (const std::uint64_t count : counts_) {
    if (count == 0) continue;
    const double p = static_cast<double>(count) / total;
    entropy -= p * std::log(p);
  }
  return entropy / std::log(static_cast<double>(params_.bins));
}

double Entropy::reference_entropy() const noexcept {
  return reference_sum_ / static_cast<double>(params_.calibration);
}

void Entropy::clear_window() noexcept {
  counts_.assign(params_.bins, 0);
  window_count_ = 0;
  window_sum_ = 0.0;
}

Decision Entropy::observe(double value) {
  ++counts_[bin_index(value)];
  window_sum_ += value;
  if (++window_count_ < params_.window) return Decision::kContinue;

  const double entropy = window_entropy();
  const double mean = window_sum_ / static_cast<double>(params_.window);
  last_entropy_ = entropy;
  last_average_ = mean;
  clear_window();

  if (calibrated_windows_ < params_.calibration) {
    reference_sum_ += entropy;
    ++calibrated_windows_;
    return Decision::kContinue;
  }
  const bool deviating =
      std::abs(entropy - reference_entropy()) > params_.threshold && mean > baseline_.mean;
  deviation_run_ = deviating ? deviation_run_ + 1 : 0;
  if (deviation_run_ < params_.run) return Decision::kContinue;
  if (tracer_ != nullptr) {
    tracer_->detector_triggered(mean, baseline_.mean, /*bucket=*/-1,
                                static_cast<std::int32_t>(params_.run));
  }
  reset();
  return Decision::kRejuvenate;
}

void Entropy::reset() {
  // A rejuvenated process is a new process: the entropy reference is
  // relearned so the detector tracks the fresh distribution shape.
  clear_window();
  calibrated_windows_ = 0;
  reference_sum_ = 0.0;
  deviation_run_ = 0;
}

DetectorState Entropy::save_state() const {
  DetectorState state = Detector::save_state();
  state.last_average = last_average_;
  state.extra_tag = kCheckpointTag;
  state.extra_u64.clear();
  state.extra_u64.reserve(3 + counts_.size());
  state.extra_u64.push_back(window_count_);
  state.extra_u64.push_back(calibrated_windows_);
  state.extra_u64.push_back(deviation_run_);
  state.extra_u64.insert(state.extra_u64.end(), counts_.begin(), counts_.end());
  state.extra_f64 = {window_sum_, reference_sum_, last_entropy_};
  return state;
}

void Entropy::restore_state(const DetectorState& state) {
  Detector::restore_state(state);
  REJUV_EXPECT(state.extra_tag == kCheckpointTag,
               "Entropy checkpoint extension tag mismatch: \"" + state.extra_tag + "\"");
  REJUV_EXPECT(state.extra_u64.size() == 3 + params_.bins,
               "Entropy checkpoint payload size mismatch");
  REJUV_EXPECT(state.extra_f64.size() == 3, "Entropy checkpoint needs 3 accumulators");
  REJUV_EXPECT(state.extra_u64[0] < params_.window,
               "Entropy checkpoint window fill out of range");
  window_count_ = state.extra_u64[0];
  calibrated_windows_ = state.extra_u64[1];
  deviation_run_ = state.extra_u64[2];
  counts_.assign(state.extra_u64.begin() + 3, state.extra_u64.end());
  window_sum_ = state.extra_f64[0];
  reference_sum_ = state.extra_f64[1];
  last_entropy_ = state.extra_f64[2];
  last_average_ = state.last_average;
}

obs::DetectorSnapshot Entropy::snapshot() const {
  obs::DetectorSnapshot snapshot = base_snapshot();
  snapshot.sample_size = static_cast<std::uint32_t>(params_.window);
  snapshot.pending = static_cast<std::uint32_t>(window_count_);
  // No cascade: fill/depth report the deviation run toward r windows.
  snapshot.fill = static_cast<std::int32_t>(deviation_run_);
  snapshot.depth = static_cast<std::int32_t>(params_.run);
  snapshot.last_average = last_average_;
  snapshot.current_target = reference_ready() ? reference_entropy() + params_.threshold : 0.0;
  return snapshot;
}

std::string Entropy::name() const {
  return "Entropy(w=" + std::to_string(params_.window) + ",m=" + std::to_string(params_.bins) +
         ",c=" + std::to_string(params_.calibration) + ",t=" + spec_number(params_.threshold) +
         ",r=" + std::to_string(params_.run) + ")";
}

}  // namespace rejuv::core
