// DetectorSpec: detector configuration as a first-class, round-trippable
// string API.
//
// The harness sweeps, the rejuv-sim CLI and the online monitor all need to
// name a detector configuration; before this header each of them assembled
// a DetectorConfig field by field. DetectorSpec is the one vocabulary they
// share: a fluent builder over DetectorConfig plus a parser for the exact
// strings Detector::name() / describe() print, so
//
//   parse_spec(describe(config)) == config
//
// holds for every configuration the paper sweeps. The grammar is
//
//   spec    := name [ "(" kv ("," kv)* ")" ]
//   name    := None | Static | SRAA | SARAA | SARAA-noaccel | CLTA
//   kv      := key "=" number      key := n | K | D | z | mu | sigma
//
// with case-insensitive names/keys and optional whitespace. `mu`/`sigma`
// override the SLA baseline (describe() never prints them; they exist so a
// CLI spec can carry a non-default baseline in one token).
#pragma once

#include <memory>
#include <string>
#include <string_view>

#include "core/factory.h"

namespace rejuv::core {

/// Parses a detector spec string into the equivalent DetectorConfig.
/// Throws std::invalid_argument naming the offending token on bad input.
DetectorConfig parse_spec(std::string_view text);

/// Fluent builder over DetectorConfig. Example:
///   auto detector = DetectorSpec(Algorithm::kSraa).n(2).k(5).d(3).build();
class DetectorSpec {
 public:
  explicit DetectorSpec(Algorithm algorithm = Algorithm::kSaraa) {
    config_.algorithm = algorithm;
  }

  /// Builder seeded from an existing config (e.g. to vary one knob).
  explicit DetectorSpec(const DetectorConfig& config) : config_(config) {}

  /// Builder seeded from a spec string; same grammar as parse_spec.
  static DetectorSpec parse(std::string_view text) { return DetectorSpec(parse_spec(text)); }

  DetectorSpec& n(std::size_t sample_size) {
    config_.sample_size = sample_size;
    return *this;
  }
  DetectorSpec& k(std::size_t buckets) {
    config_.buckets = buckets;
    return *this;
  }
  DetectorSpec& d(int depth) {
    config_.depth = depth;
    return *this;
  }
  DetectorSpec& z(double quantile_z) {
    config_.quantile_z = quantile_z;
    return *this;
  }
  DetectorSpec& accelerate(bool on) {
    config_.saraa_accelerate = on;
    return *this;
  }
  DetectorSpec& baseline(double mean, double stddev) {
    config_.baseline = Baseline{mean, stddev};
    return *this;
  }
  DetectorSpec& baseline(const Baseline& value) {
    config_.baseline = value;
    return *this;
  }

  /// The accumulated configuration (validated; throws on nonsense such as
  /// a zero sample size or non-positive sigma).
  const DetectorConfig& config() const;

  /// Canonical spec string, e.g. "SRAA(n=2,K=5,D=3)"; parse(str()) round-trips.
  std::string str() const { return describe(config()); }

  /// Builds the configured detector (a NullDetector for Algorithm::kNone).
  std::unique_ptr<Detector> build() const { return make_detector(config()); }

 private:
  DetectorConfig config_;
};

/// Throws std::invalid_argument unless `config` names a buildable detector
/// (positive n/K/D where the algorithm uses them, valid baseline).
void validate_config(const DetectorConfig& config);

}  // namespace rejuv::core
