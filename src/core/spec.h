// DetectorSpec: detector configuration as a first-class, round-trippable
// string API.
//
// The harness sweeps, the rejuv-sim CLI and the online monitor all need to
// name a detector configuration; DetectorSpec is the one vocabulary they
// share: a fluent builder over DetectorConfig plus a parser for the exact
// strings Detector::name() / describe() print, so
//
//   parse_spec(describe(config)) == config
//
// holds for every registered family. The grammar is
//
//   spec    := name [ "(" kv ("," kv)* ")" ]
//   name    := any family registered in the DetectorRegistry
//              (the built-ins: None | Static | SRAA | SARAA | SARAA-noaccel
//               | CLTA | Adaptive | EDiv | Entropy | MK)
//   kv      := key "=" number
//   key     := a parameter key from the family's schema | mu | sigma
//
// with case-insensitive names/keys and optional whitespace. Keys and their
// defaults/ranges come from each family's DetectorDescriptor, so a newly
// registered family parses and prints without touching this parser.
// `mu`/`sigma` are universal: they override the SLA baseline (describe()
// never prints them; they exist so a CLI spec can carry a non-default
// baseline in one token).
#pragma once

#include <memory>
#include <string>
#include <string_view>

#include "core/factory.h"

namespace rejuv::core {

/// Parses a detector spec string into the equivalent DetectorConfig.
/// Throws std::invalid_argument naming the offending token on bad input;
/// an unknown family name lists every registered family.
DetectorConfig parse_spec(std::string_view text);

/// Fluent builder over DetectorConfig. Example:
///   auto detector = DetectorSpec("SRAA").n(2).k(5).d(3).build();
/// The Algorithm overload is a deprecated shim for pre-registry call sites.
class DetectorSpec {
 public:
  explicit DetectorSpec(Algorithm algorithm = Algorithm::kSaraa)
      : config_(algorithm_name(algorithm)) {}

  /// Builder seeded with a registered family's schema defaults.
  explicit DetectorSpec(std::string_view family) : config_(family) {}

  /// Builder seeded from an existing config (e.g. to vary one knob).
  explicit DetectorSpec(const DetectorConfig& config) : config_(config) {}

  /// Builder seeded from a spec string; same grammar as parse_spec.
  static DetectorSpec parse(std::string_view text) { return DetectorSpec(parse_spec(text)); }

  /// Sets any schema parameter by key; throws on keys the family lacks.
  DetectorSpec& set(std::string_view key, double value) {
    config_.set(key, value);
    return *this;
  }

  // Legacy shorthand setters. Like the old field-bag assignments they stand
  // in for, they are silently ignored by families without the parameter.
  DetectorSpec& n(std::size_t sample_size) { return set_if("n", static_cast<double>(sample_size)); }
  DetectorSpec& k(std::size_t buckets) { return set_if("K", static_cast<double>(buckets)); }
  DetectorSpec& d(int depth) { return set_if("D", static_cast<double>(depth)); }
  DetectorSpec& z(double quantile_z) { return set_if("z", quantile_z); }
  /// Deprecated shim: toggles between the SARAA and SARAA-noaccel families.
  DetectorSpec& accelerate(bool on);
  DetectorSpec& baseline(double mean, double stddev) {
    config_.baseline = Baseline{mean, stddev};
    return *this;
  }
  DetectorSpec& baseline(const Baseline& value) {
    config_.baseline = value;
    return *this;
  }

  /// The accumulated configuration (validated; throws on nonsense such as
  /// a zero sample size or non-positive sigma).
  const DetectorConfig& config() const;

  /// Canonical spec string, e.g. "SRAA(n=2,K=5,D=3)"; parse(str()) round-trips.
  std::string str() const { return describe(config()); }

  /// Builds the configured detector (a NullDetector for the None family).
  std::unique_ptr<Detector> build() const { return make_detector(config()); }

 private:
  DetectorSpec& set_if(std::string_view key, double value) {
    if (config_.has(key)) config_.set(key, value);
    return *this;
  }

  DetectorConfig config_;
};

/// Throws std::invalid_argument unless `config` satisfies its family's
/// schema (count parameters integral and in range, reals finite and in
/// range) and, for families that use it, carries a valid baseline.
void validate_config(const DetectorConfig& config);

}  // namespace rejuv::core
