// MK — Mann-Kendall/Sen trend detector with escalation levels.
//
// The trend-analysis line of related work (Trivedi et al.) detects software
// aging as a monotonic trend in a performance time series. stats/trend
// provides the primitives; this family promotes them into a first-class
// Detector: each disjoint window of w observations is tested for an
// increasing trend (one-sided Mann-Kendall at quantile z) with a Sen-slope
// magnitude gate (slope >= s per observation), and each verdict feeds a
// depth-1 bucket cascade of L levels — the same escalate/de-escalate
// evidence accounting the paper's cascade detectors use, so one noisy
// trending window cannot rejuvenate on its own and trend-free windows walk
// the evidence back down. Overflowing the last level triggers rejuvenation
// and resets the cascade. Like EDiv, decisions never reference the SLA
// baseline: the trend is judged within the stream itself.
#pragma once

#include <cstdint>
#include <string>
#include <vector>

#include "core/bucket_cascade.h"
#include "core/detector.h"
#include "core/registry.h"

namespace rejuv::core {

/// Registry descriptor of the "MK" family (params w, z, s, L).
DetectorDescriptor mk_descriptor();

/// Parameters of MK: window, test quantile, slope gate, escalation levels.
struct MkParams {
  std::size_t window = 30;  ///< w: observations per trend test (>= 3)
  double z_alpha = 1.645;   ///< z: one-sided normal quantile of the MK test
  double min_slope = 0.0;   ///< s: minimum Sen slope per observation (>= 0)
  std::size_t levels = 3;   ///< L: escalation levels before triggering (>= 1)
};

class MkTrend final : public Detector {
 public:
  MkTrend(MkParams params, Baseline baseline);

  Decision observe(double value) override;
  void reset() override;
  std::string name() const override;
  const Baseline& baseline() const override { return baseline_; }
  obs::DetectorSnapshot snapshot() const override;
  DetectorState save_state() const override;
  void restore_state(const DetectorState& state) override;

  const MkParams& params() const noexcept { return params_; }
  const BucketCascade& cascade() const noexcept { return cascade_; }
  /// Observations buffered toward the current window.
  std::size_t pending_observations() const noexcept { return buffer_.size(); }

 private:
  MkParams params_;
  Baseline baseline_;  ///< carried for reporting; decisions never use it
  BucketCascade cascade_;
  std::vector<double> buffer_;  ///< raw window (Mann-Kendall needs the values)
  double last_z_ = 0.0;         ///< most recent window's MK statistic
};

}  // namespace rejuv::core
