// EDiv — e-divisive change-point detection over batched means.
//
// Following the change-point line of related work (Hunter-style performance
// regression hunting), the stream is reduced to batch means of b
// observations (the same variance-reduction batching src/stats/batch_means
// uses for confidence intervals), and a sliding window of the last w batch
// means is scanned for the split that maximizes the scaled between-segment
// divergence
//
//   Q(tau) = (tau * (w - tau) / w) * (meanR - meanL)^2 / var(window)
//
// — the (squared-Euclidean, alpha = 2) within-window form of the e-divisive
// statistic. A split with Q above the threshold q whose *right* segment
// sits higher than the left is an upward change point: response times have
// moved to a new, worse regime, and the detector rejuvenates. Splits are
// constrained to leave at least g batches on each side so a single outlier
// batch cannot masquerade as a regime change. Unlike the paper's detectors
// the decision never references the SLA baseline — the window is judged
// only against itself, which is what makes the family robust to a
// miscalibrated muX.
#pragma once

#include <cstdint>
#include <string>
#include <vector>

#include "core/detector.h"
#include "core/registry.h"

namespace rejuv::core {

/// Registry descriptor of the "EDiv" family (params b, w, q, g).
DetectorDescriptor ediv_descriptor();

/// Parameters of EDiv: batch size, window, threshold, minimum segment.
struct EDivParams {
  std::size_t batch = 10;       ///< b: observations per batch mean (>= 1)
  std::size_t window = 30;      ///< w: batch means in the sliding window (>= 2 g)
  double threshold = 10.0;      ///< q: divergence level that declares a change point
  std::size_t min_segment = 5;  ///< g: minimum batches on either side of a split (>= 1)
};

class EDiv final : public Detector {
 public:
  EDiv(EDivParams params, Baseline baseline);

  Decision observe(double value) override;
  void reset() override;
  std::string name() const override;
  const Baseline& baseline() const override { return baseline_; }
  obs::DetectorSnapshot snapshot() const override;
  DetectorState save_state() const override;
  void restore_state(const DetectorState& state) override;

  const EDivParams& params() const noexcept { return params_; }
  /// Batch means currently buffered (at most w).
  std::size_t buffered_batches() const noexcept { return means_.size(); }

 private:
  /// Scans every admissible split of the full window; true => change point.
  bool scan_window();

  EDivParams params_;
  Baseline baseline_;  ///< carried for reporting; decisions never use it
  // Batch in progress.
  std::uint64_t acc_count_ = 0;
  double acc_sum_ = 0.0;
  // Sliding window of batch means, oldest first (size <= window).
  std::vector<double> means_;
  double last_average_ = 0.0;  ///< most recent completed batch mean
};

}  // namespace rejuv::core
