#include "core/bank.h"

#include <algorithm>
#include <limits>

#include <cmath>

#include "common/expect.h"
#include "core/bank_simd.h"
#include "core/saraa.h"
#include "core/spec.h"
#include "stats/trend.h"

namespace rejuv::core {

namespace {

/// The scalar detectors these SoA kernels replicate.
bool family_is_bankable(std::string_view canonical) {
  return canonical == "Static" || canonical == "SRAA" || canonical == "SARAA" ||
         canonical == "SARAA-noaccel" || canonical == "CLTA" || canonical == "Adaptive";
}

DetectorBank::Family family_enum(std::string_view canonical, bool* accelerate) {
  *accelerate = false;
  if (canonical == "Static") return DetectorBank::Family::kStatic;
  if (canonical == "SRAA") return DetectorBank::Family::kSraa;
  if (canonical == "SARAA") {
    *accelerate = true;
    return DetectorBank::Family::kSaraa;
  }
  if (canonical == "SARAA-noaccel") return DetectorBank::Family::kSaraa;
  if (canonical == "Adaptive") return DetectorBank::Family::kAdaptive;
  return DetectorBank::Family::kClta;
}

}  // namespace

DetectorBank::DetectorBank(std::string_view family) {
  const DetectorDescriptor& descriptor = DetectorRegistry::instance().at(family);
  if (!family_is_bankable(descriptor.name)) {
    throw std::invalid_argument(
        "DetectorBank supports the Static, SRAA, SARAA, SARAA-noaccel, CLTA and Adaptive "
        "families; got \"" +
        descriptor.name + "\"");
  }
  family_name_ = descriptor.name;
  family_ = family_enum(family_name_, &accelerate_);
}

bool DetectorBank::supports(std::string_view family) noexcept {
  const DetectorDescriptor* descriptor = DetectorRegistry::instance().find(family);
  return descriptor != nullptr && family_is_bankable(descriptor->name);
}

bool DetectorBank::supports(const DetectorConfig& config) noexcept {
  return family_is_bankable(config.family());
}

bool DetectorBank::simd_compiled() noexcept {
#if defined(REJUV_BANK_AVX2) || defined(REJUV_BANK_NEON)
  return true;
#else
  return false;
#endif
}

bool DetectorBank::simd_active() const noexcept {
  if (force_scalar_) return false;
#if defined(REJUV_BANK_AVX2)
  static const bool has_avx2 = __builtin_cpu_supports("avx2") != 0;
  return has_avx2;
#elif defined(REJUV_BANK_NEON)
  return family_ == Family::kClta;
#else
  return false;
#endif
}

void DetectorBank::check_lane(std::size_t lane) const {
  REJUV_EXPECT(lane < lanes(), "bank lane index out of range");
}

std::size_t DetectorBank::add_lane(const DetectorConfig& config) {
  REJUV_EXPECT(config.family() == family_name_,
               "bank holds " + family_name_ + " lanes; config is " + config.family());
  validate_config(config);
  validate(config.baseline);

  std::uint64_t n = 1;
  std::uint64_t buckets = 1;
  std::int64_t depth = 1;
  double z = 0.0;
  switch (family_) {
    case Family::kStatic:
      buckets = config.get_count("K");
      depth = static_cast<std::int64_t>(config.get_count("D"));
      break;
    case Family::kSraa:
    case Family::kSaraa:
    case Family::kAdaptive:
      n = config.get_count("n");
      buckets = config.get_count("K");
      depth = static_cast<std::int64_t>(config.get_count("D"));
      break;
    case Family::kClta:
      n = config.get_count("n");
      z = config.get("z");
      break;
  }
  std::uint64_t shift_window = 0;
  if (family_ == Family::kAdaptive) shift_window = config.get_count("w");
  // The window/cascade state lives in doubles; every reachable value is an
  // exact integer as long as the configured counts are.
  REJUV_EXPECT(n < (1ull << 53) && buckets < (1ull << 53) && shift_window < (1ull << 53),
               "bank parameters exceed 2^53");

  mu_.push_back(config.baseline.mean);
  sigma_.push_back(config.baseline.stddev);
  norig_.push_back(n);
  buckets_u_.push_back(buckets);
  depth_i_.push_back(depth);
  zq_.push_back(z);
  cur_n_.push_back(n);

  sum_.push_back(0.0);
  count_.push_back(0.0);
  wcur_.push_back(static_cast<double>(n));
  wnext_.push_back(static_cast<double>(n));
  fill_.push_back(0.0);
  bucket_.push_back(0.0);
  depth_.push_back(static_cast<double>(depth));
  buckets_.push_back(static_cast<double>(buckets));
  last_avg_.push_back(0.0);
  observations_.push_back(0);

  if (family_ == Family::kAdaptive) {
    cfg_mu_.push_back(config.baseline.mean);
    cfg_sigma_.push_back(config.baseline.stddev);
    shift_w_.push_back(static_cast<double>(shift_window));
    shift_t_.push_back(config.get("t"));
    shift_h_.push_back(config.get_count("h"));
    shift_count_.push_back(0.0);
    shift_sum_.push_back(0.0);
    shift_sumsq_.push_back(0.0);
    shift_means_.emplace_back();
    shift_vars_.emplace_back();
    shift_means_.back().reserve(shift_h_.back());
    shift_vars_.back().reserve(shift_h_.back());
    recalibrations_.push_back(0);
  }

  const Baseline baseline = config.baseline;
  switch (family_) {
    case Family::kStatic:
    case Family::kSraa:
    case Family::kAdaptive:
      target_.push_back(baseline.bucket_target(0));
      break;
    case Family::kSaraa:
      target_.push_back(baseline.scaled_target(0.0, static_cast<std::size_t>(n)));
      break;
    case Family::kClta:
      target_.push_back(baseline.scaled_target(z, static_cast<std::size_t>(n)));
      break;
  }

  const std::size_t lane_count = lanes();
  changed_flags_.resize(lane_count, 0);
  trig_flags_.resize(lane_count, 0);
  lane_fill_.resize(lane_count, 0);
  lane_offset_.resize(lane_count, 0);
  row_buf_.resize(lane_count, 0.0);
  return lane_count - 1;
}

// ---------------------------------------------------------------------------
// Scalar reference path: exact replica of the per-value detector logic,
// including the tracer event order of each scalar implementation.
// ---------------------------------------------------------------------------

DetectorBank::Transition DetectorBank::cascade_step(std::size_t lane, bool exceeded) {
  // BucketCascade::update, on the lane's double-typed state.
  double f = fill_[lane] + (exceeded ? 1.0 : -1.0);
  double b = bucket_[lane];
  Transition transition = Transition::kNone;
  if (f > depth_[lane]) {
    f = 0.0;
    b += 1.0;
    transition = Transition::kEscalated;
  }
  if (f < 0.0 && b > 0.0) {
    f = depth_[lane];
    b -= 1.0;
    transition = Transition::kDeescalated;
  }
  if (f < 0.0 && b == 0.0) f = 0.0;
  if (b == buckets_[lane]) {
    fill_[lane] = 0.0;
    bucket_[lane] = 0.0;
    return Transition::kTriggered;
  }
  fill_[lane] = f;
  bucket_[lane] = b;
  return transition;
}

void DetectorBank::refresh_target(std::size_t lane) {
  const Baseline baseline{mu_[lane], sigma_[lane]};
  switch (family_) {
    case Family::kStatic:
    case Family::kSraa:
    case Family::kAdaptive:
      target_[lane] = baseline.bucket_target(static_cast<std::size_t>(bucket_[lane]));
      break;
    case Family::kSaraa:
      target_[lane] =
          baseline.scaled_target(bucket_[lane], static_cast<std::size_t>(cur_n_[lane]));
      break;
    case Family::kClta:
      break;  // threshold is fixed for the lane's lifetime
  }
}

Decision DetectorBank::observe(std::size_t lane, double value, obs::Tracer* tracer) {
  check_lane(lane);
  ++observations_[lane];
  return step(lane, value, tracer);
}

Decision DetectorBank::step(std::size_t lane, double value, obs::Tracer* tracer) {
  if (family_ == Family::kStatic) {
    const auto bucket_before = static_cast<std::int32_t>(bucket_[lane]);
    const double target = target_[lane];
    const bool exceeded = value > target;
    last_avg_[lane] = value;
    const Transition transition = cascade_step(lane, exceeded);
    if (transition != Transition::kNone) refresh_target(lane);
    if (tracer != nullptr) {
      tracer->sample(value, target, exceeded, static_cast<std::int32_t>(bucket_[lane]),
                     static_cast<std::int32_t>(fill_[lane]), /*sample_size=*/1);
      switch (transition) {
        case Transition::kEscalated:
          tracer->escalated(static_cast<std::int32_t>(bucket_[lane]),
                            static_cast<std::int32_t>(fill_[lane]), 1);
          break;
        case Transition::kDeescalated:
          tracer->deescalated(static_cast<std::int32_t>(bucket_[lane]),
                              static_cast<std::int32_t>(fill_[lane]), 1);
          break;
        case Transition::kTriggered:
          tracer->detector_triggered(value, target, bucket_before,
                                     static_cast<std::int32_t>(buckets_u_[lane]));
          break;
        case Transition::kNone:
          break;
      }
    }
    return transition == Transition::kTriggered ? Decision::kRejuvenate : Decision::kContinue;
  }

  if (family_ == Family::kSraa) return sraa_step(lane, value, tracer);

  if (family_ == Family::kAdaptive) {
    // Adaptive::observe — the inner SRAA decides, then the shift monitor
    // accumulates (unless a rejuvenation just tore the process down, which
    // voids the evidence).
    const Decision decision = sraa_step(lane, value, tracer);
    if (decision == Decision::kRejuvenate) {
      clear_shift_state(lane);
      return decision;
    }
    shift_sum_[lane] += value;
    shift_sumsq_[lane] += value * value;
    shift_count_[lane] += 1.0;
    if (shift_count_[lane] == shift_w_[lane]) complete_shift_window(lane);
    return decision;
  }

  // Window families: WindowAverage::push, committed before the family logic.
  sum_[lane] += value;
  count_[lane] += 1.0;
  if (count_[lane] < wcur_[lane]) return Decision::kContinue;
  const double average = sum_[lane] / wcur_[lane];
  count_[lane] = 0.0;
  sum_[lane] = 0.0;
  wcur_[lane] = wnext_[lane];

  if (family_ == Family::kClta) {
    last_avg_[lane] = average;
    const double threshold = target_[lane];
    const bool exceeded = average > threshold;
    if (tracer != nullptr) {
      tracer->sample(average, threshold, exceeded, /*bucket=*/-1, /*fill=*/0,
                     static_cast<std::uint32_t>(norig_[lane]));
      if (exceeded) tracer->detector_triggered(average, threshold, /*bucket=*/-1, /*count=*/1);
    }
    // Clta::observe resets the window on a trigger; at a block boundary
    // that is exactly the commit above, so there is nothing left to do.
    return exceeded ? Decision::kRejuvenate : Decision::kContinue;
  }

  const auto bucket_before = static_cast<std::int32_t>(bucket_[lane]);
  const double target = target_[lane];
  const bool exceeded = average > target;
  last_avg_[lane] = average;
  const Transition transition = cascade_step(lane, exceeded);

  // SARAA: the sample event carries the n that produced this average
  // (pre-schedule), escalation events the post-schedule n — as Saraa does.
  if (tracer != nullptr) {
    tracer->sample(average, target, exceeded, static_cast<std::int32_t>(bucket_[lane]),
                   static_cast<std::int32_t>(fill_[lane]),
                   static_cast<std::uint32_t>(cur_n_[lane]));
  }
  switch (transition) {
    case Transition::kNone:
      return Decision::kContinue;
    case Transition::kEscalated:
    case Transition::kDeescalated:
      if (accelerate_) {
        cur_n_[lane] = saraa_sample_size(static_cast<std::size_t>(norig_[lane]),
                                         static_cast<std::size_t>(bucket_[lane]),
                                         static_cast<std::size_t>(buckets_u_[lane]));
        // set_window at a block boundary (count == 0): both lengths change.
        wnext_[lane] = static_cast<double>(cur_n_[lane]);
        wcur_[lane] = wnext_[lane];
      }
      refresh_target(lane);
      if (tracer != nullptr) {
        const auto bucket = static_cast<std::int32_t>(bucket_[lane]);
        const auto fill = static_cast<std::int32_t>(fill_[lane]);
        const auto sample_size = static_cast<std::uint32_t>(cur_n_[lane]);
        if (transition == Transition::kEscalated) {
          tracer->escalated(bucket, fill, sample_size);
        } else {
          tracer->deescalated(bucket, fill, sample_size);
        }
      }
      return Decision::kContinue;
    case Transition::kTriggered:
      cur_n_[lane] = norig_[lane];
      wnext_[lane] = static_cast<double>(cur_n_[lane]);
      wcur_[lane] = wnext_[lane];
      count_[lane] = 0.0;
      sum_[lane] = 0.0;
      refresh_target(lane);
      if (tracer != nullptr) {
        tracer->detector_triggered(average, target, bucket_before,
                                   static_cast<std::int32_t>(buckets_u_[lane]));
      }
      return Decision::kRejuvenate;
  }
  return Decision::kContinue;
}

/// The scalar SRAA step — window commit, cascade, Sraa's trace event order.
/// Shared by the kSraa lanes and the inner detector of kAdaptive lanes.
Decision DetectorBank::sraa_step(std::size_t lane, double value, obs::Tracer* tracer) {
  sum_[lane] += value;
  count_[lane] += 1.0;
  if (count_[lane] < wcur_[lane]) return Decision::kContinue;
  const double average = sum_[lane] / wcur_[lane];
  count_[lane] = 0.0;
  sum_[lane] = 0.0;
  wcur_[lane] = wnext_[lane];

  const auto bucket_before = static_cast<std::int32_t>(bucket_[lane]);
  const double target = target_[lane];
  const bool exceeded = average > target;
  last_avg_[lane] = average;
  const Transition transition = cascade_step(lane, exceeded);
  if (transition != Transition::kNone) refresh_target(lane);
  if (tracer != nullptr) {
    tracer->sample(average, target, exceeded, static_cast<std::int32_t>(bucket_[lane]),
                   static_cast<std::int32_t>(fill_[lane]),
                   static_cast<std::uint32_t>(norig_[lane]));
    switch (transition) {
      case Transition::kEscalated:
        tracer->escalated(static_cast<std::int32_t>(bucket_[lane]),
                          static_cast<std::int32_t>(fill_[lane]),
                          static_cast<std::uint32_t>(norig_[lane]));
        break;
      case Transition::kDeescalated:
        tracer->deescalated(static_cast<std::int32_t>(bucket_[lane]),
                            static_cast<std::int32_t>(fill_[lane]),
                            static_cast<std::uint32_t>(norig_[lane]));
        break;
      case Transition::kTriggered:
        tracer->detector_triggered(average, target, bucket_before,
                                   static_cast<std::int32_t>(buckets_u_[lane]));
        break;
      case Transition::kNone:
        break;
    }
  }
  return transition == Transition::kTriggered ? Decision::kRejuvenate : Decision::kContinue;
}

void DetectorBank::clear_shift_state(std::size_t lane) {
  shift_count_[lane] = 0.0;
  shift_sum_[lane] = 0.0;
  shift_sumsq_[lane] = 0.0;
  shift_means_[lane].clear();
  shift_vars_[lane].clear();
}

/// Adaptive's shift-window completion — the exact scalar arithmetic, per
/// lane (cold: runs once per w observations, and the recalibration tail
/// only on an actual workload shift).
void DetectorBank::complete_shift_window(std::size_t lane) {
  const double count = shift_count_[lane];
  const double mean = shift_sum_[lane] / count;
  double variance =
      (shift_sumsq_[lane] - shift_sum_[lane] * shift_sum_[lane] / count) / (count - 1.0);
  if (variance < 0.0) variance = 0.0;  // cancellation on near-constant input
  shift_count_[lane] = 0.0;
  shift_sum_[lane] = 0.0;
  shift_sumsq_[lane] = 0.0;
  std::vector<double>& means = shift_means_[lane];
  std::vector<double>& variances = shift_vars_[lane];
  const auto history = static_cast<std::size_t>(shift_h_[lane]);
  if (means.size() == history) {
    means.erase(means.begin());
    variances.erase(variances.begin());
  }
  means.push_back(mean);
  variances.push_back(variance);
  if (means.size() < history) return;

  double grand_mean = 0.0;
  for (const double m : means) grand_mean += m;
  grand_mean /= static_cast<double>(means.size());
  if (std::abs(grand_mean - mu_[lane]) <= shift_t_[lane] * sigma_[lane]) return;
  if (stats::mann_kendall(means).increasing()) return;

  double mean_variance = 0.0;
  for (const double v : variances) mean_variance += v;
  mean_variance /= static_cast<double>(variances.size());
  const double sigma = std::sqrt(mean_variance);
  mu_[lane] = grand_mean;
  if (sigma > 0.0) sigma_[lane] = sigma;  // keep the old sigma on degenerate input
  ++recalibrations_[lane];
  // Adaptive::rebuild_inner — a fresh SRAA against the recalibrated
  // baseline: cascade and window zeroed, the (possibly partial) block in
  // flight discarded.
  bucket_[lane] = 0.0;
  fill_[lane] = 0.0;
  count_[lane] = 0.0;
  sum_[lane] = 0.0;
  wcur_[lane] = static_cast<double>(norig_[lane]);
  wnext_[lane] = wcur_[lane];
  last_avg_[lane] = 0.0;
  refresh_target(lane);
  means.clear();
  variances.clear();
}

// ---------------------------------------------------------------------------
// Batch paths.
// ---------------------------------------------------------------------------

void DetectorBank::observe_lane(std::size_t lane, std::span<const double> values) {
  check_lane(lane);
  for (const double value : values) {
    ++observations_[lane];
    if (step(lane, value, nullptr) == Decision::kRejuvenate) {
      triggers_.push_back({lane, observations_[lane]});
    }
  }
}

void DetectorBank::observe_rows(std::span<const double> values) {
  if (values.empty()) return;
  const std::size_t lane_count = lanes();
  REJUV_EXPECT(lane_count > 0, "observe_rows on an empty bank");
  REJUV_EXPECT(values.size() % lane_count == 0,
               "observe_rows input must be row-major: one value per lane per row");
  const std::size_t rows = values.size() / lane_count;
  for (std::size_t r = 0; r < rows; ++r) advance_row(values.data() + r * lane_count);
}

void DetectorBank::advance_row(const double* row) {
  const std::size_t lane_count = lanes();
  std::uint32_t any = 0;
  switch (family_) {
    case Family::kStatic: {
      bank_kernel::StaticRow kernel_row{lane_count,      row,
                                        target_.data(),  fill_.data(),
                                        bucket_.data(),  depth_.data(),
                                        buckets_.data(), last_avg_.data(),
                                        changed_flags_.data(), trig_flags_.data()};
#if defined(REJUV_BANK_AVX2)
      any = simd_active() ? bank_kernel::static_row_avx2(kernel_row)
                          : bank_kernel::static_row_portable(kernel_row);
#else
      any = bank_kernel::static_row_portable(kernel_row);
#endif
      break;
    }
    case Family::kSraa:
    case Family::kSaraa:
    case Family::kAdaptive: {
      bank_kernel::WindowCascadeRow kernel_row{lane_count,
                                               row,
                                               sum_.data(),
                                               count_.data(),
                                               wcur_.data(),
                                               wnext_.data(),
                                               target_.data(),
                                               fill_.data(),
                                               bucket_.data(),
                                               depth_.data(),
                                               buckets_.data(),
                                               last_avg_.data(),
                                               changed_flags_.data(),
                                               trig_flags_.data()};
#if defined(REJUV_BANK_AVX2)
      any = simd_active() ? bank_kernel::window_cascade_row_avx2(kernel_row)
                          : bank_kernel::window_cascade_row_portable(kernel_row);
#else
      any = bank_kernel::window_cascade_row_portable(kernel_row);
#endif
      break;
    }
    case Family::kClta: {
      bank_kernel::CltaRow kernel_row{lane_count,     row,
                                      sum_.data(),    count_.data(),
                                      wcur_.data(),   wnext_.data(),
                                      target_.data(), last_avg_.data(),
                                      trig_flags_.data()};
#if defined(REJUV_BANK_AVX2)
      any = simd_active() ? bank_kernel::clta_row_avx2(kernel_row)
                          : bank_kernel::clta_row_portable(kernel_row);
#elif defined(REJUV_BANK_NEON)
      any = simd_active() ? bank_kernel::clta_row_neon(kernel_row)
                          : bank_kernel::clta_row_portable(kernel_row);
#else
      any = bank_kernel::clta_row_portable(kernel_row);
#endif
      break;
    }
  }
  std::uint64_t* observations = observations_.data();
  for (std::size_t l = 0; l < lane_count; ++l) ++observations[l];
  if ((any & bank_kernel::kAnyChanged) != 0) fixup_changed_lanes();
  if ((any & bank_kernel::kAnyTriggered) != 0) record_row_triggers();
  if (family_ == Family::kAdaptive) adaptive_post_row(row, any);
}

/// The per-value half of Adaptive::observe the window-cascade kernel does
/// not cover: every lane's shift accumulator absorbs its row value (lanes
/// whose inner SRAA just triggered clear instead — the scalar detector
/// never accumulates the triggering value), and lanes completing their
/// w-window run the scalar completion logic.
void DetectorBank::adaptive_post_row(const double* row, std::uint32_t any) {
  const std::size_t lane_count = lanes();
  const bool row_triggered = (any & bank_kernel::kAnyTriggered) != 0;
  double* shift_sum = shift_sum_.data();
  double* shift_sumsq = shift_sumsq_.data();
  double* shift_count = shift_count_.data();
  for (std::size_t l = 0; l < lane_count; ++l) {
    if (row_triggered && trig_flags_[l] != 0) {
      clear_shift_state(l);
      continue;
    }
    const double value = row[l];
    shift_sum[l] += value;
    shift_sumsq[l] += value * value;
    shift_count[l] += 1.0;
    if (shift_count[l] == shift_w_[l]) complete_shift_window(l);
  }
}

void DetectorBank::fixup_changed_lanes() {
  const std::size_t lane_count = lanes();
  for (std::size_t l = 0; l < lane_count; ++l) {
    if (changed_flags_[l] == 0) continue;
    if (family_ == Family::kSaraa) {
      const bool triggered = trig_flags_[l] != 0;
      if (triggered) {
        cur_n_[l] = norig_[l];
      } else if (accelerate_) {
        cur_n_[l] = saraa_sample_size(static_cast<std::size_t>(norig_[l]),
                                      static_cast<std::size_t>(bucket_[l]),
                                      static_cast<std::size_t>(buckets_u_[l]));
      }
      if (triggered || accelerate_) {
        // A transition only happens at a block boundary, where the kernel
        // has already zeroed count/sum; set_window therefore moves both
        // the next and the current block length.
        wnext_[l] = static_cast<double>(cur_n_[l]);
        wcur_[l] = wnext_[l];
      }
    }
    refresh_target(l);
  }
}

void DetectorBank::record_row_triggers() {
  const std::size_t lane_count = lanes();
  for (std::size_t l = 0; l < lane_count; ++l) {
    if (trig_flags_[l] != 0) triggers_.push_back({l, observations_[l]});
  }
}

void DetectorBank::observe_lanes(std::span<const std::uint32_t> lane_ids,
                                 std::span<const double> values) {
  REJUV_EXPECT(lane_ids.size() == values.size(),
               "observe_lanes needs one lane id per value");
  if (values.empty()) return;
  const std::size_t lane_count = lanes();
  REJUV_EXPECT(lane_count > 0, "observe_lanes on an empty bank");

  // Gather the interleaved input into per-lane columns (stable, so each
  // lane sees its own observations in arrival order).
  std::fill(lane_fill_.begin(), lane_fill_.end(), std::uint64_t{0});
  for (const std::uint32_t id : lane_ids) {
    REJUV_EXPECT(id < lane_count, "observe_lanes lane id out of range");
    ++lane_fill_[id];
  }
  std::size_t offset = 0;
  std::uint64_t rect = std::numeric_limits<std::uint64_t>::max();
  for (std::size_t l = 0; l < lane_count; ++l) {
    lane_offset_[l] = offset;
    offset += static_cast<std::size_t>(lane_fill_[l]);
    rect = std::min(rect, lane_fill_[l]);
  }
  if (columns_.size() < values.size()) columns_.resize(values.size());
  std::fill(lane_fill_.begin(), lane_fill_.end(), std::uint64_t{0});
  for (std::size_t i = 0; i < values.size(); ++i) {
    const std::uint32_t id = lane_ids[i];
    columns_[lane_offset_[id] + static_cast<std::size_t>(lane_fill_[id]++)] = values[i];
  }

  // Rectangular prefix: every lane has at least `rect` observations, so
  // they advance in lockstep through the row kernel.
  for (std::uint64_t r = 0; r < rect; ++r) {
    for (std::size_t l = 0; l < lane_count; ++l) {
      row_buf_[l] = columns_[lane_offset_[l] + static_cast<std::size_t>(r)];
    }
    advance_row(row_buf_.data());
  }

  // Ragged remainder: the surplus observations of busier lanes, per lane.
  for (std::size_t l = 0; l < lane_count; ++l) {
    const auto total = static_cast<std::size_t>(lane_fill_[l]);
    for (std::size_t k = static_cast<std::size_t>(rect); k < total; ++k) {
      ++observations_[l];
      if (step(l, columns_[lane_offset_[l] + k], nullptr) == Decision::kRejuvenate) {
        triggers_.push_back({l, observations_[l]});
      }
    }
  }
}

// ---------------------------------------------------------------------------
// Per-lane introspection and checkpointing — byte-identical to the scalar
// detector of the lane's configuration.
// ---------------------------------------------------------------------------

std::uint64_t DetectorBank::observations(std::size_t lane) const {
  check_lane(lane);
  return observations_[lane];
}

Baseline DetectorBank::baseline(std::size_t lane) const {
  check_lane(lane);
  return Baseline{mu_[lane], sigma_[lane]};
}

std::string DetectorBank::name(std::size_t lane) const {
  check_lane(lane);
  switch (family_) {
    case Family::kStatic:
      return "Static(K=" + std::to_string(buckets_u_[lane]) +
             ",D=" + std::to_string(depth_i_[lane]) + ")";
    case Family::kSraa:
      return "SRAA(n=" + std::to_string(norig_[lane]) + ",K=" + std::to_string(buckets_u_[lane]) +
             ",D=" + std::to_string(depth_i_[lane]) + ")";
    case Family::kSaraa:
      return std::string("SARAA") + (accelerate_ ? "" : "-noaccel") +
             "(n=" + std::to_string(norig_[lane]) + ",K=" + std::to_string(buckets_u_[lane]) +
             ",D=" + std::to_string(depth_i_[lane]) + ")";
    case Family::kClta:
      return "CLTA(n=" + std::to_string(norig_[lane]) + ",z=" + spec_number(zq_[lane]) + ")";
    case Family::kAdaptive:
      return "Adaptive(n=" + std::to_string(norig_[lane]) +
             ",K=" + std::to_string(buckets_u_[lane]) + ",D=" + std::to_string(depth_i_[lane]) +
             ",w=" + std::to_string(static_cast<std::uint64_t>(shift_w_[lane])) +
             ",t=" + spec_number(shift_t_[lane]) + ",h=" + std::to_string(shift_h_[lane]) + ")";
  }
  return {};
}

obs::DetectorSnapshot DetectorBank::snapshot(std::size_t lane) const {
  check_lane(lane);
  obs::DetectorSnapshot snapshot;
  snapshot.algorithm = name(lane);
  snapshot.baseline_mean = mu_[lane];
  snapshot.baseline_stddev = sigma_[lane];
  const Baseline baseline{mu_[lane], sigma_[lane]};
  switch (family_) {
    case Family::kStatic:
      snapshot.has_cascade = true;
      snapshot.bucket = static_cast<std::int32_t>(bucket_[lane]);
      snapshot.bucket_count = static_cast<std::int32_t>(buckets_u_[lane]);
      snapshot.fill = static_cast<std::int32_t>(fill_[lane]);
      snapshot.depth = static_cast<std::int32_t>(depth_i_[lane]);
      snapshot.sample_size = 1;
      snapshot.last_average = last_avg_[lane];
      snapshot.current_target = baseline.bucket_target(static_cast<std::size_t>(bucket_[lane]));
      break;
    case Family::kSraa:
    case Family::kAdaptive:  // the inner SRAA's snapshot, against the active baseline
      snapshot.has_cascade = true;
      snapshot.bucket = static_cast<std::int32_t>(bucket_[lane]);
      snapshot.bucket_count = static_cast<std::int32_t>(buckets_u_[lane]);
      snapshot.fill = static_cast<std::int32_t>(fill_[lane]);
      snapshot.depth = static_cast<std::int32_t>(depth_i_[lane]);
      snapshot.sample_size = static_cast<std::uint32_t>(norig_[lane]);
      snapshot.pending = static_cast<std::uint32_t>(count_[lane]);
      snapshot.last_average = last_avg_[lane];
      snapshot.current_target = baseline.bucket_target(static_cast<std::size_t>(bucket_[lane]));
      break;
    case Family::kSaraa:
      snapshot.has_cascade = true;
      snapshot.bucket = static_cast<std::int32_t>(bucket_[lane]);
      snapshot.bucket_count = static_cast<std::int32_t>(buckets_u_[lane]);
      snapshot.fill = static_cast<std::int32_t>(fill_[lane]);
      snapshot.depth = static_cast<std::int32_t>(depth_i_[lane]);
      snapshot.sample_size = static_cast<std::uint32_t>(cur_n_[lane]);
      snapshot.pending = static_cast<std::uint32_t>(count_[lane]);
      snapshot.last_average = last_avg_[lane];
      snapshot.current_target =
          baseline.scaled_target(bucket_[lane], static_cast<std::size_t>(cur_n_[lane]));
      break;
    case Family::kClta:
      snapshot.sample_size = static_cast<std::uint32_t>(norig_[lane]);
      snapshot.pending = static_cast<std::uint32_t>(count_[lane]);
      snapshot.last_average = last_avg_[lane];
      snapshot.current_target = target_[lane];
      break;
  }
  return snapshot;
}

DetectorState DetectorBank::save_state(std::size_t lane) const {
  check_lane(lane);
  DetectorState state;
  state.algorithm = name(lane);
  switch (family_) {
    case Family::kStatic:
      state.has_cascade = true;
      state.bucket = static_cast<std::uint64_t>(bucket_[lane]);
      state.fill = static_cast<std::int64_t>(fill_[lane]);
      state.last_average = last_avg_[lane];
      break;
    case Family::kSraa:
    case Family::kSaraa:
    case Family::kAdaptive:
      state.has_cascade = true;
      state.bucket = static_cast<std::uint64_t>(bucket_[lane]);
      state.fill = static_cast<std::int64_t>(fill_[lane]);
      state.has_window = true;
      state.window_length = static_cast<std::uint64_t>(wcur_[lane]);
      state.window_next = static_cast<std::uint64_t>(wnext_[lane]);
      state.window_count = static_cast<std::uint64_t>(count_[lane]);
      state.window_sum = sum_[lane];
      if (family_ == Family::kSaraa) state.current_n = cur_n_[lane];
      state.last_average = last_avg_[lane];
      if (family_ == Family::kAdaptive) {
        // Adaptive::save_state — the shift monitor's tagged extension.
        const std::vector<double>& means = shift_means_[lane];
        const std::vector<double>& variances = shift_vars_[lane];
        state.extra_tag = "Adaptive.v1";
        state.extra_u64 = {static_cast<std::uint64_t>(shift_count_[lane]),
                           static_cast<std::uint64_t>(means.size()), recalibrations_[lane]};
        state.extra_f64.clear();
        state.extra_f64.reserve(4 + 2 * means.size());
        state.extra_f64.push_back(shift_sum_[lane]);
        state.extra_f64.push_back(shift_sumsq_[lane]);
        state.extra_f64.push_back(mu_[lane]);
        state.extra_f64.push_back(sigma_[lane]);
        state.extra_f64.insert(state.extra_f64.end(), means.begin(), means.end());
        state.extra_f64.insert(state.extra_f64.end(), variances.begin(), variances.end());
      }
      break;
    case Family::kClta:
      state.has_window = true;
      state.window_length = static_cast<std::uint64_t>(wcur_[lane]);
      state.window_next = static_cast<std::uint64_t>(wnext_[lane]);
      state.window_count = static_cast<std::uint64_t>(count_[lane]);
      state.window_sum = sum_[lane];
      state.last_average = last_avg_[lane];
      break;
  }
  return state;
}

void DetectorBank::restore_state(std::size_t lane, const DetectorState& state) {
  check_lane(lane);
  REJUV_EXPECT(state.algorithm == name(lane), "checkpoint algorithm mismatch: saved \"" +
                                                  state.algorithm + "\", restoring into \"" +
                                                  name(lane) + "\"");
  if (family_ == Family::kAdaptive) {
    // Adaptive::restore_state's extension validation, verbatim; the active
    // baseline must land in mu_/sigma_ before the shared tail recomputes
    // the lane's target against it.
    REJUV_EXPECT(state.extra_tag == "Adaptive.v1",
                 "Adaptive checkpoint extension tag mismatch: \"" + state.extra_tag + "\"");
    REJUV_EXPECT(state.extra_u64.size() == 3, "Adaptive checkpoint needs 3 counters");
    const std::uint64_t history_size = state.extra_u64[1];
    REJUV_EXPECT(history_size <= shift_h_[lane], "Adaptive checkpoint history overflows h");
    REJUV_EXPECT(static_cast<double>(state.extra_u64[0]) < shift_w_[lane],
                 "Adaptive checkpoint window fill out of range");
    REJUV_EXPECT(state.extra_f64.size() == 4 + 2 * history_size,
                 "Adaptive checkpoint payload size mismatch");
    shift_count_[lane] = static_cast<double>(state.extra_u64[0]);
    recalibrations_[lane] = state.extra_u64[2];
    shift_sum_[lane] = state.extra_f64[0];
    shift_sumsq_[lane] = state.extra_f64[1];
    const Baseline active{state.extra_f64[2], state.extra_f64[3]};
    validate(active);
    mu_[lane] = active.mean;
    sigma_[lane] = active.stddev;
    const double* history = state.extra_f64.data() + 4;
    shift_means_[lane].assign(history, history + history_size);
    shift_vars_[lane].assign(history + history_size, history + 2 * history_size);
  }
  const bool has_cascade = family_ != Family::kClta;
  const bool has_window = family_ != Family::kStatic;
  if (has_cascade) {
    REJUV_EXPECT(state.bucket < buckets_u_[lane], "restored bucket pointer out of range");
    REJUV_EXPECT(state.fill >= 0 && state.fill <= depth_i_[lane], "restored fill out of range");
    bucket_[lane] = static_cast<double>(state.bucket);
    fill_[lane] = static_cast<double>(state.fill);
  }
  if (family_ == Family::kSaraa) {
    REJUV_EXPECT(state.current_n >= 1, "SARAA checkpoint current_n must be at least 1");
    cur_n_[lane] = state.current_n;
  }
  if (has_window) {
    REJUV_EXPECT(state.window_length >= 1 && state.window_next >= 1,
                 "restored window must hold at least one observation");
    REJUV_EXPECT(state.window_count < state.window_length, "restored block must be incomplete");
    wcur_[lane] = static_cast<double>(state.window_length);
    wnext_[lane] = static_cast<double>(state.window_next);
    count_[lane] = static_cast<double>(state.window_count);
    sum_[lane] = state.window_sum;
  }
  last_avg_[lane] = state.last_average;
  refresh_target(lane);
}

void DetectorBank::reset(std::size_t lane) {
  check_lane(lane);
  switch (family_) {
    case Family::kStatic:
      bucket_[lane] = 0.0;
      fill_[lane] = 0.0;
      break;
    case Family::kSraa:
      bucket_[lane] = 0.0;
      fill_[lane] = 0.0;
      count_[lane] = 0.0;
      sum_[lane] = 0.0;
      wcur_[lane] = wnext_[lane];
      break;
    case Family::kSaraa:
      bucket_[lane] = 0.0;
      fill_[lane] = 0.0;
      cur_n_[lane] = norig_[lane];
      wnext_[lane] = static_cast<double>(cur_n_[lane]);
      wcur_[lane] = wnext_[lane];
      count_[lane] = 0.0;
      sum_[lane] = 0.0;
      break;
    case Family::kClta:
      count_[lane] = 0.0;
      sum_[lane] = 0.0;
      wcur_[lane] = wnext_[lane];
      break;
    case Family::kAdaptive:
      // Adaptive::reset — configured baseline back in force, shift monitor
      // cleared, a fresh inner SRAA (which is why last_avg_ drops to 0 here
      // but survives the other families' resets).
      mu_[lane] = cfg_mu_[lane];
      sigma_[lane] = cfg_sigma_[lane];
      recalibrations_[lane] = 0;
      clear_shift_state(lane);
      bucket_[lane] = 0.0;
      fill_[lane] = 0.0;
      count_[lane] = 0.0;
      sum_[lane] = 0.0;
      wcur_[lane] = static_cast<double>(norig_[lane]);
      wnext_[lane] = wcur_[lane];
      last_avg_[lane] = 0.0;
      break;
  }
  refresh_target(lane);
}

// ---------------------------------------------------------------------------
// BankController
// ---------------------------------------------------------------------------

BankController::BankController(std::string_view family, std::uint64_t cooldown_observations)
    : bank_(family), cooldown_observations_(cooldown_observations) {}

std::size_t BankController::add_lane(const DetectorConfig& config) {
  const std::size_t lane = bank_.add_lane(config);
  cooldown_remaining_.push_back(0);
  obs_offset_.push_back(0);
  trigger_indices_.emplace_back();
  tracers_.push_back(nullptr);
  return lane;
}

void BankController::set_tracer(std::size_t lane, obs::Tracer* tracer) {
  REJUV_EXPECT(lane < lanes(), "bank lane index out of range");
  if (tracers_[lane] != nullptr && tracer == nullptr) --traced_lanes_;
  if (tracers_[lane] == nullptr && tracer != nullptr) ++traced_lanes_;
  tracers_[lane] = tracer;
}

std::uint64_t BankController::observations(std::size_t lane) const {
  return bank_.observations(lane) + obs_offset_[lane];
}

std::uint64_t BankController::rejuvenations(std::size_t lane) const {
  REJUV_EXPECT(lane < lanes(), "bank lane index out of range");
  return trigger_indices_[lane].size();
}

const std::vector<std::uint64_t>& BankController::trigger_indices(std::size_t lane) const {
  REJUV_EXPECT(lane < lanes(), "bank lane index out of range");
  return trigger_indices_[lane];
}

void BankController::record_trigger(std::size_t lane, std::uint64_t observation) {
  trigger_indices_[lane].push_back(observation);
  if (cooldown_observations_ > 0) {
    if (cooldown_remaining_[lane] == 0) ++lanes_in_cooldown_;
    cooldown_remaining_[lane] = cooldown_observations_;
  }
  obs::Tracer* tracer = tracers_[lane];
  if (tracer != nullptr && tracer->enabled()) {
    tracer->rejuvenation_triggered(observation, bank_.snapshot(lane));
  }
}

bool BankController::observe(std::size_t lane, double value) {
  REJUV_EXPECT(lane < lanes(), "bank lane index out of range");
  if (cooldown_remaining_[lane] > 0) {
    --cooldown_remaining_[lane];
    if (cooldown_remaining_[lane] == 0) --lanes_in_cooldown_;
    ++obs_offset_[lane];
    if (tracers_[lane] != nullptr) tracers_[lane]->cooldown_suppressed(cooldown_remaining_[lane]);
    return false;
  }
  if (bank_.observe(lane, value, tracers_[lane]) == Decision::kRejuvenate) {
    record_trigger(lane, observations(lane));
    return true;
  }
  return false;
}

bool BankController::lane_needs_scalar(std::size_t lane) const {
  return cooldown_observations_ > 0 || cooldown_remaining_[lane] > 0 ||
         tracers_[lane] != nullptr;
}

std::size_t BankController::drain_bank_triggers() {
  const std::vector<BankTrigger>& triggers = bank_.triggers();
  for (const BankTrigger& trigger : triggers) {
    trigger_indices_[trigger.lane].push_back(trigger.observation + obs_offset_[trigger.lane]);
  }
  const std::size_t count = triggers.size();
  bank_.clear_triggers();
  return count;
}

std::size_t BankController::observe_lane_all(std::size_t lane, std::span<const double> values) {
  REJUV_EXPECT(lane < lanes(), "bank lane index out of range");
  if (!lane_needs_scalar(lane)) {
    bank_.observe_lane(lane, values);
    return drain_bank_triggers();
  }
  std::size_t triggers = 0;
  for (const double value : values) {
    if (observe(lane, value)) ++triggers;
  }
  return triggers;
}

std::size_t BankController::observe_lanes(std::span<const std::uint32_t> lane_ids,
                                          std::span<const double> values) {
  REJUV_EXPECT(lane_ids.size() == values.size(), "observe_lanes needs one lane id per value");
  const bool lockstep =
      cooldown_observations_ == 0 && lanes_in_cooldown_ == 0 && traced_lanes_ == 0;
  if (lockstep) {
    bank_.observe_lanes(lane_ids, values);
    return drain_bank_triggers();
  }
  std::size_t triggers = 0;
  for (std::size_t i = 0; i < values.size(); ++i) {
    if (observe(lane_ids[i], values[i])) ++triggers;
  }
  return triggers;
}

ControllerState BankController::save_state(std::size_t lane) const {
  REJUV_EXPECT(lane < lanes(), "bank lane index out of range");
  ControllerState state;
  state.observations = observations(lane);
  state.cooldown_remaining = cooldown_remaining_[lane];
  state.trigger_indices = trigger_indices_[lane];
  state.detector = bank_.save_state(lane);
  return state;
}

void BankController::restore_state(std::size_t lane, const ControllerState& state) {
  REJUV_EXPECT(lane < lanes(), "bank lane index out of range");
  bank_.restore_state(lane, state.detector);
  obs_offset_[lane] = state.observations - bank_.observations(lane);
  if (cooldown_remaining_[lane] > 0) --lanes_in_cooldown_;
  cooldown_remaining_[lane] = state.cooldown_remaining;
  if (cooldown_remaining_[lane] > 0) ++lanes_in_cooldown_;
  trigger_indices_[lane] = state.trigger_indices;
}

}  // namespace rejuv::core
