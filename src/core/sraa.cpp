#include "core/sraa.h"

#include "common/expect.h"

namespace rejuv::core {

DetectorDescriptor sraa_descriptor() {
  DetectorDescriptor descriptor;
  descriptor.name = "SRAA";
  descriptor.summary = "static rejuvenation with averaging: disjoint n-windows feed a K x D bucket cascade (paper Fig. 6)";
  descriptor.params = {
      count_param("n", 1, "averaging window size"),
      count_param("K", 1, "bucket count (degradation levels)"),
      count_param("D", 1, "bucket depth (evidence per level)"),
  };
  descriptor.make = [](const DetectorConfig& config) -> std::unique_ptr<Detector> {
    return std::make_unique<Sraa>(
        SraaParams{config.get_count("n"), config.get_count("K"),
                   static_cast<int>(config.get_count("D"))},
        config.baseline);
  };
  return descriptor;
}

Sraa::Sraa(SraaParams params, Baseline baseline)
    : params_(params),
      baseline_(baseline),
      cascade_(params.depth, params.buckets),
      window_(params.sample_size) {
  REJUV_EXPECT(params.sample_size >= 1, "SRAA sample size n must be at least 1");
  validate(baseline_);
  refresh_target();
}

Decision Sraa::observe(double value) {
  const auto average = window_.push(value);
  if (!average) return Decision::kContinue;
  const auto bucket_before = static_cast<std::int32_t>(cascade_.bucket());
  const double target = target_;
  const bool exceeded = *average > target;
  last_average_ = *average;
  const auto transition = cascade_.update(exceeded);
  if (transition != BucketCascade::Transition::kNone) refresh_target();
  if (tracer_ != nullptr) {
    tracer_->sample(*average, target, exceeded, static_cast<std::int32_t>(cascade_.bucket()),
                    cascade_.fill(), static_cast<std::uint32_t>(params_.sample_size));
    switch (transition) {
      case BucketCascade::Transition::kEscalated:
        tracer_->escalated(static_cast<std::int32_t>(cascade_.bucket()), cascade_.fill(),
                           static_cast<std::uint32_t>(params_.sample_size));
        break;
      case BucketCascade::Transition::kDeescalated:
        tracer_->deescalated(static_cast<std::int32_t>(cascade_.bucket()), cascade_.fill(),
                             static_cast<std::uint32_t>(params_.sample_size));
        break;
      case BucketCascade::Transition::kTriggered:
        tracer_->detector_triggered(*average, target, bucket_before,
                                    static_cast<std::int32_t>(params_.buckets));
        break;
      case BucketCascade::Transition::kNone:
        break;
    }
  }
  return transition == BucketCascade::Transition::kTriggered ? Decision::kRejuvenate
                                                             : Decision::kContinue;
}

std::size_t Sraa::observe_all(std::span<const double> values) {
  // The traced path must emit the identical event stream, so it defers to
  // the per-observation loop; the untraced path accumulates each window in
  // a single pass and touches the cascade only at block boundaries.
  if (tracer_ != nullptr) return Detector::observe_all(values);
  bool triggered = false;
  const std::size_t consumed = window_.push_all(values, [&](double average) {
    last_average_ = average;
    const auto transition = cascade_.update(average > target_);
    if (transition == BucketCascade::Transition::kNone) return true;
    refresh_target();
    triggered = transition == BucketCascade::Transition::kTriggered;
    return !triggered;
  });
  return triggered ? consumed - 1 : values.size();
}

void Sraa::reset() {
  cascade_.reset();
  window_.reset();
  refresh_target();
}

DetectorState Sraa::save_state() const {
  DetectorState state = Detector::save_state();
  state.has_cascade = true;
  state.bucket = cascade_.bucket();
  state.fill = cascade_.fill();
  state.has_window = true;
  state.window_length = window_.current_window();
  state.window_next = window_.window();
  state.window_count = window_.pending();
  state.window_sum = window_.partial_sum();
  state.last_average = last_average_;
  return state;
}

void Sraa::restore_state(const DetectorState& state) {
  Detector::restore_state(state);
  cascade_.restore(static_cast<std::size_t>(state.bucket), static_cast<int>(state.fill));
  window_.restore(static_cast<std::size_t>(state.window_length),
                  static_cast<std::size_t>(state.window_next),
                  static_cast<std::size_t>(state.window_count), state.window_sum);
  last_average_ = state.last_average;
  refresh_target();
}

obs::DetectorSnapshot Sraa::snapshot() const {
  obs::DetectorSnapshot snapshot = base_snapshot();
  snapshot.has_cascade = true;
  snapshot.bucket = static_cast<std::int32_t>(cascade_.bucket());
  snapshot.bucket_count = static_cast<std::int32_t>(params_.buckets);
  snapshot.fill = cascade_.fill();
  snapshot.depth = params_.depth;
  snapshot.sample_size = static_cast<std::uint32_t>(params_.sample_size);
  snapshot.pending = static_cast<std::uint32_t>(window_.pending());
  snapshot.last_average = last_average_;
  snapshot.current_target = baseline_.bucket_target(cascade_.bucket());
  return snapshot;
}

std::string Sraa::name() const {
  return "SRAA(n=" + std::to_string(params_.sample_size) +
         ",K=" + std::to_string(params_.buckets) + ",D=" + std::to_string(params_.depth) + ")";
}

}  // namespace rejuv::core
