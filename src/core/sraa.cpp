#include "core/sraa.h"

#include "common/expect.h"

namespace rejuv::core {

Sraa::Sraa(SraaParams params, Baseline baseline)
    : params_(params),
      baseline_(baseline),
      cascade_(params.depth, params.buckets),
      window_(params.sample_size) {
  REJUV_EXPECT(params.sample_size >= 1, "SRAA sample size n must be at least 1");
  validate(baseline_);
}

Decision Sraa::observe(double value) {
  const auto average = window_.push(value);
  if (!average) return Decision::kContinue;
  const bool exceeded = *average > baseline_.bucket_target(cascade_.bucket());
  return cascade_.update(exceeded) == BucketCascade::Transition::kTriggered
             ? Decision::kRejuvenate
             : Decision::kContinue;
}

void Sraa::reset() {
  cascade_.reset();
  window_.reset();
}

std::string Sraa::name() const {
  return "SRAA(n=" + std::to_string(params_.sample_size) +
         ",K=" + std::to_string(params_.buckets) + ",D=" + std::to_string(params_.depth) + ")";
}

}  // namespace rejuv::core
