#include "core/baseline.h"

#include <cmath>

#include "common/expect.h"

namespace rejuv::core {

double Baseline::scaled_target(double n_std_devs, std::size_t sample_size) const {
  REJUV_EXPECT(sample_size >= 1, "sample size must be at least 1");
  return mean + n_std_devs * stddev / std::sqrt(static_cast<double>(sample_size));
}

void validate(const Baseline& baseline) {
  REJUV_EXPECT(std::isfinite(baseline.mean), "baseline mean must be finite");
  REJUV_EXPECT(baseline.stddev > 0.0 && std::isfinite(baseline.stddev),
               "baseline stddev must be positive and finite");
}

BaselineEstimator::BaselineEstimator(std::uint64_t calibration_size)
    : calibration_size_(calibration_size) {
  REJUV_EXPECT(calibration_size >= 2, "calibration needs at least two observations");
}

bool BaselineEstimator::observe(double value) {
  if (!calibrated()) stats_.push(value);
  return calibrated();
}

Baseline BaselineEstimator::estimate() const {
  REJUV_EXPECT(calibrated(), "baseline requested before calibration completed");
  return Baseline{stats_.mean(), stats_.stddev()};
}

}  // namespace rejuv::core
