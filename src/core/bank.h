// DetectorBank: a structure-of-arrays bank of same-family detectors.
//
// The scalar detectors are already allocation-free at a few ns/observation,
// but fleet-scale monitoring wants *many detectors per core*: thousands of
// response-time streams, each with its own detector instance, advanced in
// lockstep as interleaved batches arrive. A bank packs the per-instance
// state of N detectors of one family (Static, SRAA, SARAA, SARAA-noaccel,
// CLTA, Adaptive) into contiguous arrays — running window sums, block counts, bucket
// pointers, fill counters, cached targets — and advances all lanes per
// input row with the vectorizable kernels in bank_simd.h (portable
// autovectorizing loops, plus AVX2/NEON intrinsics behind REJUV_SIMD,
// runtime-dispatched with the portable loop as fallback).
//
// The contract is bit-identity: for every (family, config, stream), a bank
// lane makes byte-identical decisions to an independent scalar detector —
// the same Decision per observation, the same escalation timestamps, the
// same snapshot() fields, and checkpoint states that round-trip through the
// same DetectorState both ways (tests/bank_differential_test.cpp pins all
// of it, with and without SIMD). This holds because vectorization runs
// *across* lanes: each lane's own floating-point work keeps the exact
// scalar order, and the rare retargeting results are recomputed by the same
// Baseline/schedule functions in a scalar fixup pass over flagged lanes.
//
// BankController layers the RejuvenationController semantics (observation
// counting, cooldown suppression, trigger history, checkpointing) over a
// bank, one virtual-call-free controller per lane, so the monitor can drain
// all shards through one bank advance per batch.
#pragma once

#include <cstddef>
#include <cstdint>
#include <memory>
#include <span>
#include <string>
#include <string_view>
#include <vector>

#include "core/baseline.h"
#include "core/checkpoint.h"
#include "core/detector.h"
#include "core/registry.h"
#include "obs/detector_snapshot.h"
#include "obs/tracer.h"

namespace rejuv::core {

/// One rejuvenation decision made by a bank batch call: which lane fired
/// and at which of its own observations (1-based, counted since the lane
/// was added; BankController maps these onto controller indices).
struct BankTrigger {
  std::size_t lane = 0;
  std::uint64_t observation = 0;
};

class DetectorBank {
 public:
  /// The detector families a bank can hold. Adaptive lanes run the SRAA
  /// window-cascade kernel plus a per-row shift-monitor pass: the hot
  /// accumulators (window sum/sumsq/count) advance with the row, and the
  /// rare window-completion work — history update, Mann-Kendall vote,
  /// baseline recalibration — runs the exact scalar Adaptive logic per
  /// lane, so recalibrated lanes stay bit-identical to the scalar twin.
  enum class Family { kStatic, kSraa, kSaraa, kClta, kAdaptive };

  /// An empty bank for `family` ("Static", "SRAA", "SARAA", "SARAA-noaccel",
  /// "CLTA" or "Adaptive"; case-insensitive like the registry). Throws
  /// std::invalid_argument for unsupported families.
  explicit DetectorBank(std::string_view family);

  /// True when a bank can hold detectors of `family` / `config`.
  static bool supports(std::string_view family) noexcept;
  static bool supports(const DetectorConfig& config) noexcept;

  /// True when this binary carries intrinsic kernels (REJUV_SIMD build).
  static bool simd_compiled() noexcept;

  /// Appends one detector instance configured by `config` (validated like
  /// make_detector; the family must match the bank's). Lanes of one bank
  /// may differ in parameters and baseline. Returns the new lane index.
  std::size_t add_lane(const DetectorConfig& config);

  std::size_t lanes() const noexcept { return target_.size(); }
  const std::string& family_name() const noexcept { return family_name_; }
  Family family() const noexcept { return family_; }

  /// Feeds one observation to one lane — the scalar reference path, used
  /// for ragged tails and traced runs. Emits the identical event stream a
  /// scalar detector would through `tracer` (nullptr = untraced). Does NOT
  /// record into triggers(); the caller owns the returned Decision.
  Decision observe(std::size_t lane, double value, obs::Tracer* tracer = nullptr);

  /// Feeds a batch to one lane. Unlike Detector::observe_all this does not
  /// stop at a trigger — the lane self-resets exactly as the scalar
  /// detector does and keeps consuming; every trigger is recorded in
  /// triggers().
  void observe_lane(std::size_t lane, std::span<const double> values);

  /// Advances every lane in lockstep: `values` is row-major, one value per
  /// lane per row (values.size() must be a multiple of lanes()). This is
  /// the vectorized hot path; triggers are recorded in triggers().
  void observe_rows(std::span<const double> values);

  /// Scatter/gather entry point for interleaved multi-stream input:
  /// values[i] is an observation for lane_ids[i]. Per-lane observation
  /// order is preserved (that is all bit-identity needs — lanes are
  /// independent); the rectangular prefix every lane shares is advanced
  /// through the row kernel, the ragged remainder per lane. Triggers are
  /// recorded in triggers(), grouped by lane.
  void observe_lanes(std::span<const std::uint32_t> lane_ids, std::span<const double> values);

  /// Triggers recorded by the batch paths since the last clear_triggers(),
  /// in processing order (per-lane order is monotone).
  const std::vector<BankTrigger>& triggers() const noexcept { return triggers_; }
  void clear_triggers() noexcept { triggers_.clear(); }
  /// Pre-grows the trigger log so steady-state batches stay allocation-free.
  void reserve_triggers(std::size_t capacity) { triggers_.reserve(capacity); }

  /// Observations fed to `lane` since it was added (suppressed values a
  /// controller never forwards are not counted — see BankController).
  std::uint64_t observations(std::size_t lane) const;

  /// Per-lane equivalents of the Detector interface; each matches the
  /// scalar detector of the lane's configuration byte for byte (name
  /// string, snapshot fields, DetectorState fields, restore validation).
  std::string name(std::size_t lane) const;
  Baseline baseline(std::size_t lane) const;
  obs::DetectorSnapshot snapshot(std::size_t lane) const;
  DetectorState save_state(std::size_t lane) const;
  void restore_state(std::size_t lane, const DetectorState& state);
  void reset(std::size_t lane);

  /// Forces the portable kernels even when intrinsic ones are compiled in
  /// and the CPU supports them — the differential tests run both in one
  /// process and compare.
  void force_scalar(bool force) noexcept { force_scalar_ = force; }
  /// True when the next batch call will use an intrinsic kernel for this
  /// family on this CPU.
  bool simd_active() const noexcept;

 private:
  enum class Transition { kNone, kEscalated, kDeescalated, kTriggered };

  Decision step(std::size_t lane, double value, obs::Tracer* tracer);
  Decision sraa_step(std::size_t lane, double value, obs::Tracer* tracer);
  Transition cascade_step(std::size_t lane, bool exceeded);
  void adaptive_post_row(const double* row, std::uint32_t any);
  void clear_shift_state(std::size_t lane);
  void complete_shift_window(std::size_t lane);
  void refresh_target(std::size_t lane);
  void advance_row(const double* row);
  void fixup_changed_lanes();
  void record_row_triggers();
  void check_lane(std::size_t lane) const;

  Family family_;
  bool accelerate_ = false;  ///< SARAA vs SARAA-noaccel
  std::string family_name_;  ///< canonical registry name
  bool force_scalar_ = false;

  // Per-lane configuration (cold; natural types for naming/validation).
  std::vector<double> mu_;
  std::vector<double> sigma_;
  std::vector<std::uint64_t> norig_;  ///< n (initial n for SARAA; 1 for Static)
  std::vector<std::uint64_t> buckets_u_;
  std::vector<std::int64_t> depth_i_;
  std::vector<double> zq_;  ///< CLTA quantile z
  std::vector<std::uint64_t> cur_n_;  ///< SARAA schedule-controlled n

  // Adaptive-only lanes (filled when family_ == kAdaptive; mu_/sigma_ then
  // hold the *active* baseline, recalibrated on workload shifts, and these
  // keep the configured one for reset()).
  std::vector<double> cfg_mu_;
  std::vector<double> cfg_sigma_;
  std::vector<double> shift_w_;          ///< w, exact small integer
  std::vector<double> shift_t_;          ///< t, grand-mean departure in sigma
  std::vector<std::uint64_t> shift_h_;   ///< h, trend-vote history length
  std::vector<double> shift_count_;      ///< shift window fill (hot)
  std::vector<double> shift_sum_;        ///< shift window sum (hot)
  std::vector<double> shift_sumsq_;      ///< shift window sum of squares (hot)
  std::vector<std::vector<double>> shift_means_;  ///< completed-window means, oldest first
  std::vector<std::vector<double>> shift_vars_;   ///< completed-window variances
  std::vector<std::uint64_t> recalibrations_;

  // Hot SoA state: exact small integers stored as doubles so one kernel
  // shape (add/div/compare/blend on pd vectors) covers every family.
  std::vector<double> sum_;
  std::vector<double> count_;
  std::vector<double> wcur_;
  std::vector<double> wnext_;
  std::vector<double> target_;  ///< bucket target / CLTA threshold in force
  std::vector<double> fill_;
  std::vector<double> bucket_;
  std::vector<double> depth_;
  std::vector<double> buckets_;
  std::vector<double> last_avg_;
  std::vector<std::uint64_t> observations_;

  // Per-row scratch (sized to lanes; reused, no steady-state allocation).
  std::vector<unsigned char> changed_flags_;
  std::vector<unsigned char> trig_flags_;

  // observe_lanes scratch: per-lane counts/offsets and the gathered columns.
  std::vector<std::uint64_t> lane_fill_;
  std::vector<std::size_t> lane_offset_;
  std::vector<double> columns_;
  std::vector<double> row_buf_;

  std::vector<BankTrigger> triggers_;
};

/// RejuvenationController semantics over a DetectorBank, one lane per
/// monitored stream: observation counting, cooldown suppression, 1-based
/// trigger indices and ControllerState checkpointing are all per lane and
/// byte-identical to a RejuvenationController wrapping the scalar detector
/// (the monitor's bank mode relies on this for checkpoint-journal
/// compatibility with scalar mode, both directions).
class BankController {
 public:
  /// `cooldown_observations`: as RejuvenationController — observations
  /// after a trigger during which the lane's detector is not fed.
  BankController(std::string_view family, std::uint64_t cooldown_observations);

  /// Adds a lane (see DetectorBank::add_lane) with no tracer attached.
  std::size_t add_lane(const DetectorConfig& config);

  std::size_t lanes() const noexcept { return bank_.lanes(); }
  DetectorBank& bank() noexcept { return bank_; }
  const DetectorBank& bank() const noexcept { return bank_; }

  /// Per-lane tracer for detector + controller events (nullptr detaches).
  void set_tracer(std::size_t lane, obs::Tracer* tracer);

  /// Feeds one observation to one lane; true means rejuvenate now. Event
  /// emission (cooldown_suppressed, sample/escalation/trigger,
  /// rejuvenation_triggered with the post-reset snapshot) matches
  /// RejuvenationController::observe exactly.
  bool observe(std::size_t lane, double value);

  /// Feeds a batch to one lane; returns the number of triggers. Routes
  /// through the bank batch path when nothing forces per-value semantics
  /// (no cooldown configured or pending, no tracer on the lane).
  std::size_t observe_lane_all(std::size_t lane, std::span<const double> values);

  /// Feeds an interleaved batch (values[i] → lane_ids[i]); returns the
  /// number of triggers across lanes. Uses the lockstep scatter/gather
  /// path when every lane is cooldown-free and untraced.
  std::size_t observe_lanes(std::span<const std::uint32_t> lane_ids,
                            std::span<const double> values);

  std::uint64_t observations(std::size_t lane) const;
  std::uint64_t rejuvenations(std::size_t lane) const;
  /// 1-based observation indices at which `lane` triggered.
  const std::vector<std::uint64_t>& trigger_indices(std::size_t lane) const;

  obs::DetectorSnapshot detector_snapshot(std::size_t lane) const { return bank_.snapshot(lane); }

  /// ControllerState checkpointing per lane, field-identical to
  /// RejuvenationController::save_state/restore_state on the scalar twin.
  ControllerState save_state(std::size_t lane) const;
  void restore_state(std::size_t lane, const ControllerState& state);

 private:
  void record_trigger(std::size_t lane, std::uint64_t observation);
  std::size_t drain_bank_triggers();
  bool lane_needs_scalar(std::size_t lane) const;

  DetectorBank bank_;
  std::uint64_t cooldown_observations_;
  std::size_t lanes_in_cooldown_ = 0;
  std::vector<std::uint64_t> cooldown_remaining_;
  /// observations(lane) - bank_.observations(lane): grows by one per
  /// suppressed value (never forwarded to the bank) and absorbs restored
  /// counters; modular arithmetic keeps the mapping exact.
  std::vector<std::uint64_t> obs_offset_;
  std::vector<std::vector<std::uint64_t>> trigger_indices_;
  std::vector<obs::Tracer*> tracers_;
  std::size_t traced_lanes_ = 0;
};

}  // namespace rejuv::core
