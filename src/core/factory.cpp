#include "core/factory.h"

#include "common/expect.h"

namespace rejuv::core {

std::string algorithm_name(Algorithm algorithm) {
  switch (algorithm) {
    case Algorithm::kNone:
      return "None";
    case Algorithm::kStatic:
      return "Static";
    case Algorithm::kSraa:
      return "SRAA";
    case Algorithm::kSaraa:
      return "SARAA";
    case Algorithm::kClta:
      return "CLTA";
  }
  return "Unknown";
}

bool operator==(const DetectorConfig& a, const DetectorConfig& b) {
  return a.algorithm == b.algorithm && a.sample_size == b.sample_size && a.buckets == b.buckets &&
         a.depth == b.depth && a.quantile_z == b.quantile_z &&
         a.saraa_accelerate == b.saraa_accelerate && a.baseline.mean == b.baseline.mean &&
         a.baseline.stddev == b.baseline.stddev;
}

std::unique_ptr<Detector> make_detector(const DetectorConfig& config) {
  switch (config.algorithm) {
    case Algorithm::kNone:
      return std::make_unique<NullDetector>(config.baseline);
    case Algorithm::kStatic:
      return std::make_unique<StaticRejuvenation>(config.buckets, config.depth, config.baseline);
    case Algorithm::kSraa:
      return std::make_unique<Sraa>(
          SraaParams{config.sample_size, config.buckets, config.depth}, config.baseline);
    case Algorithm::kSaraa:
      return std::make_unique<Saraa>(
          SaraaParams{config.sample_size, config.buckets, config.depth, config.saraa_accelerate},
          config.baseline);
    case Algorithm::kClta:
      return std::make_unique<Clta>(CltaParams{config.sample_size, config.quantile_z},
                                    config.baseline);
  }
  REJUV_ASSERT(false, "unhandled algorithm");
  return nullptr;
}

std::string describe(const DetectorConfig& config) {
  return make_detector(config)->name();
}

CalibratingDetector::CalibratingDetector(DetectorConfig config, std::uint64_t calibration_size)
    : config_(config), estimator_(calibration_size), active_baseline_(config.baseline) {
  REJUV_EXPECT(config.algorithm != Algorithm::kNone, "calibrating a null detector is meaningless");
}

Decision CalibratingDetector::observe(double value) {
  if (inner_ == nullptr) {
    if (estimator_.observe(value)) {
      active_baseline_ = estimator_.estimate();
      // Degenerate calibration (constant metric) falls back to a unit sigma
      // so the inner detector remains constructible.
      if (active_baseline_.stddev <= 0.0) active_baseline_.stddev = 1.0;
      DetectorConfig calibrated = config_;
      calibrated.baseline = active_baseline_;
      inner_ = make_detector(calibrated);
      inner_->set_tracer(tracer_);
    }
    return Decision::kContinue;
  }
  return inner_->observe(value);
}

obs::DetectorSnapshot CalibratingDetector::snapshot() const {
  if (inner_ != nullptr) {
    obs::DetectorSnapshot snapshot = inner_->snapshot();
    snapshot.algorithm = name();
    return snapshot;
  }
  obs::DetectorSnapshot snapshot = base_snapshot();
  snapshot.pending = static_cast<std::uint32_t>(estimator_.observed());
  return snapshot;
}

void CalibratingDetector::set_tracer(obs::Tracer* tracer) noexcept {
  tracer_ = tracer;
  if (inner_ != nullptr) inner_->set_tracer(tracer);
}

void CalibratingDetector::reset() {
  if (inner_ != nullptr) inner_->reset();
}

DetectorState CalibratingDetector::save_state() const {
  if (inner_ == nullptr) {
    DetectorState state = Detector::save_state();
    state.calibrating = true;
    const stats::RunningStats& stats = estimator_.stats();
    state.calibration_count = stats.count();
    state.calibration_mean = stats.raw_mean();
    state.calibration_m2 = stats.m2();
    state.calibration_min = stats.min();
    state.calibration_max = stats.max();
    return state;
  }
  DetectorState state = inner_->save_state();
  state.algorithm = name();
  state.baseline_mean = active_baseline_.mean;
  state.baseline_stddev = active_baseline_.stddev;
  return state;
}

void CalibratingDetector::restore_state(const DetectorState& state) {
  Detector::restore_state(state);
  if (state.calibrating) {
    inner_.reset();
    stats::RunningStats stats;
    stats.restore(state.calibration_count, state.calibration_mean, state.calibration_m2,
                  state.calibration_min, state.calibration_max);
    estimator_.restore(stats);
    active_baseline_ = config_.baseline;
    return;
  }
  active_baseline_ = Baseline{state.baseline_mean, state.baseline_stddev};
  DetectorConfig calibrated = config_;
  calibrated.baseline = active_baseline_;
  inner_ = make_detector(calibrated);
  inner_->set_tracer(tracer_);
  DetectorState inner_state = state;
  inner_state.algorithm = inner_->name();
  inner_->restore_state(inner_state);
}

std::string CalibratingDetector::name() const {
  return "Calibrating[" + (inner_ != nullptr ? inner_->name() : describe(config_)) + "]";
}

const Baseline& CalibratingDetector::baseline() const { return active_baseline_; }

}  // namespace rejuv::core
