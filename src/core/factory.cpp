#include "core/factory.h"

#include <cmath>

#include "common/expect.h"
#include "core/spec.h"

namespace rejuv::core {

std::string algorithm_name(Algorithm algorithm) {
  // Deprecated shim: a plain mapping table, not a dispatch site — dispatch
  // goes through the registry.
  static constexpr const char* kNames[] = {"None", "Static", "SRAA", "SARAA", "CLTA"};
  const auto index = static_cast<std::size_t>(algorithm);
  return index < std::size(kNames) ? kNames[index] : "Unknown";
}

DetectorDescriptor null_descriptor() {
  DetectorDescriptor descriptor;
  descriptor.name = "None";
  descriptor.summary = "never rejuvenate (the unmanaged baseline)";
  descriptor.needs_baseline = false;
  descriptor.make = [](const DetectorConfig& config) -> std::unique_ptr<Detector> {
    return std::make_unique<NullDetector>(config.baseline);
  };
  return descriptor;
}

std::unique_ptr<Detector> make_detector(const DetectorConfig& config) {
  validate_config(config);
  return config.descriptor().make(config);
}

std::string describe(const DetectorConfig& config) {
  const DetectorDescriptor& descriptor = config.descriptor();
  std::string text = descriptor.name;
  if (descriptor.params.empty()) return text;
  text += "(";
  for (std::size_t i = 0; i < descriptor.params.size(); ++i) {
    const ParamSpec& param = descriptor.params[i];
    if (i > 0) text += ",";
    text += param.key;
    text += "=";
    if (param.kind == ParamSpec::Kind::kCount) {
      text += std::to_string(static_cast<long long>(std::llround(config.values()[i])));
    } else {
      text += spec_number(config.values()[i]);
    }
  }
  text += ")";
  return text;
}

CalibratingDetector::CalibratingDetector(DetectorConfig config, std::uint64_t calibration_size)
    : config_(config), estimator_(calibration_size), active_baseline_(config.baseline) {
  REJUV_EXPECT(!config.is_null(), "calibrating a null detector is meaningless");
}

Decision CalibratingDetector::observe(double value) {
  if (inner_ == nullptr) {
    if (estimator_.observe(value)) {
      active_baseline_ = estimator_.estimate();
      // Degenerate calibration (constant metric) falls back to a unit sigma
      // so the inner detector remains constructible.
      if (active_baseline_.stddev <= 0.0) active_baseline_.stddev = 1.0;
      DetectorConfig calibrated = config_;
      calibrated.baseline = active_baseline_;
      inner_ = make_detector(calibrated);
      inner_->set_tracer(tracer_);
    }
    return Decision::kContinue;
  }
  return inner_->observe(value);
}

std::size_t CalibratingDetector::observe_all(std::span<const double> values) {
  std::size_t consumed = 0;
  if (inner_ == nullptr) {
    // Calibration head: feed the estimator per value (observe() builds the
    // inner detector at the exact boundary observation). None of these can
    // trigger, so the batch only ends early if the post-boundary tail does.
    while (consumed < values.size() && inner_ == nullptr) {
      observe(values[consumed++]);
    }
    if (consumed == values.size()) return values.size();
  }
  const std::size_t index = inner_->observe_all(values.subspan(consumed));
  const std::size_t tail = values.size() - consumed;
  return index == tail ? values.size() : consumed + index;
}

obs::DetectorSnapshot CalibratingDetector::snapshot() const {
  if (inner_ != nullptr) {
    obs::DetectorSnapshot snapshot = inner_->snapshot();
    snapshot.algorithm = name();
    return snapshot;
  }
  obs::DetectorSnapshot snapshot = base_snapshot();
  snapshot.pending = static_cast<std::uint32_t>(estimator_.observed());
  return snapshot;
}

void CalibratingDetector::set_tracer(obs::Tracer* tracer) noexcept {
  tracer_ = tracer;
  if (inner_ != nullptr) inner_->set_tracer(tracer);
}

void CalibratingDetector::reset() {
  if (inner_ != nullptr) inner_->reset();
}

DetectorState CalibratingDetector::save_state() const {
  if (inner_ == nullptr) {
    DetectorState state = Detector::save_state();
    state.calibrating = true;
    const stats::RunningStats& stats = estimator_.stats();
    state.calibration_count = stats.count();
    state.calibration_mean = stats.raw_mean();
    state.calibration_m2 = stats.m2();
    state.calibration_min = stats.min();
    state.calibration_max = stats.max();
    return state;
  }
  DetectorState state = inner_->save_state();
  state.algorithm = name();
  state.baseline_mean = active_baseline_.mean;
  state.baseline_stddev = active_baseline_.stddev;
  return state;
}

void CalibratingDetector::restore_state(const DetectorState& state) {
  Detector::restore_state(state);
  if (state.calibrating) {
    inner_.reset();
    stats::RunningStats stats;
    stats.restore(state.calibration_count, state.calibration_mean, state.calibration_m2,
                  state.calibration_min, state.calibration_max);
    estimator_.restore(stats);
    active_baseline_ = config_.baseline;
    return;
  }
  active_baseline_ = Baseline{state.baseline_mean, state.baseline_stddev};
  DetectorConfig calibrated = config_;
  calibrated.baseline = active_baseline_;
  inner_ = make_detector(calibrated);
  inner_->set_tracer(tracer_);
  DetectorState inner_state = state;
  inner_state.algorithm = inner_->name();
  inner_->restore_state(inner_state);
}

std::string CalibratingDetector::name() const {
  return "Calibrating[" + (inner_ != nullptr ? inner_->name() : describe(config_)) + "]";
}

const Baseline& CalibratingDetector::baseline() const { return active_baseline_; }

}  // namespace rejuv::core
