#include "core/spec.h"

#include <cctype>
#include <charconv>
#include <cmath>

#include "common/expect.h"

namespace rejuv::core {

namespace {

std::string lower(std::string_view text) {
  std::string result(text);
  for (char& c : result) c = static_cast<char>(std::tolower(static_cast<unsigned char>(c)));
  return result;
}

std::string_view trim(std::string_view text) {
  while (!text.empty() && std::isspace(static_cast<unsigned char>(text.front()))) {
    text.remove_prefix(1);
  }
  while (!text.empty() && std::isspace(static_cast<unsigned char>(text.back()))) {
    text.remove_suffix(1);
  }
  return text;
}

[[noreturn]] void fail(std::string_view text, const std::string& why) {
  throw std::invalid_argument("bad detector spec \"" + std::string(text) + "\": " + why);
}

double parse_number(std::string_view text, std::string_view token) {
  const std::string_view value = trim(token);
  double result = 0.0;
  const auto [ptr, ec] = std::from_chars(value.data(), value.data() + value.size(), result);
  if (ec != std::errc{} || ptr != value.data() + value.size() || !std::isfinite(result)) {
    std::string why = "\"";
    why += token;
    why += "\" is not a number";
    fail(text, why);
  }
  return result;
}

}  // namespace

DetectorConfig parse_spec(std::string_view text) {
  const std::string_view spec = trim(text);
  if (spec.empty()) fail(text, "empty spec");

  const std::size_t open = spec.find('(');
  std::string_view name = trim(spec.substr(0, open));
  std::string_view args;
  if (open != std::string_view::npos) {
    if (spec.back() != ')') fail(text, "missing closing parenthesis");
    args = spec.substr(open + 1, spec.size() - open - 2);
  }

  const DetectorDescriptor* descriptor = DetectorRegistry::instance().find(name);
  if (descriptor == nullptr) {
    std::string known;
    for (const std::string& family : DetectorRegistry::instance().family_names()) {
      if (!known.empty()) known += ", ";
      known += family;
    }
    fail(text, "unknown detector family \"" + std::string(name) +
                   "\"; registered families: " + known);
  }
  DetectorConfig config(descriptor->name);

  while (!args.empty()) {
    const std::size_t comma = args.find(',');
    const std::string_view kv =
        comma == std::string_view::npos ? args : args.substr(0, comma);
    args = comma == std::string_view::npos ? std::string_view{} : args.substr(comma + 1);

    const std::size_t eq = kv.find('=');
    if (eq == std::string_view::npos) fail(text, "expected key=value, got \"" + std::string(kv) + "\"");
    const std::string key = lower(trim(kv.substr(0, eq)));
    const std::string_view value = kv.substr(eq + 1);
    // The universal baseline keys, valid for every family.
    if (key == "mu") {
      config.baseline.mean = parse_number(text, value);
      continue;
    }
    if (key == "sigma") {
      config.baseline.stddev = parse_number(text, value);
      continue;
    }
    if (!config.has(key)) fail(text, "unknown key \"" + key + "\"");
    config.set(key, parse_number(text, value));
  }

  try {
    validate_config(config);
  } catch (const std::invalid_argument& error) {
    fail(text, error.what());
  }
  return config;
}

void validate_config(const DetectorConfig& config) {
  const DetectorDescriptor& descriptor = config.descriptor();
  if (descriptor.needs_baseline) validate(config.baseline);
  for (std::size_t i = 0; i < descriptor.params.size(); ++i) {
    const ParamSpec& param = descriptor.params[i];
    const double value = config.values()[i];
    REJUV_EXPECT(std::isfinite(value),
                 descriptor.name + " parameter " + param.key + " must be finite");
    if (param.kind == ParamSpec::Kind::kCount) {
      REJUV_EXPECT(value == std::floor(value),
                   descriptor.name + " parameter " + param.key + " must be an integer");
    }
    if (param.strict_min) {
      REJUV_EXPECT(value > param.min_value, descriptor.name + " parameter " + param.key +
                                                " must be greater than " +
                                                spec_number(param.min_value));
    } else {
      REJUV_EXPECT(value >= param.min_value, descriptor.name + " parameter " + param.key +
                                                 " must be at least " +
                                                 spec_number(param.min_value));
    }
    REJUV_EXPECT(value <= param.max_value, descriptor.name + " parameter " + param.key +
                                               " must be at most " +
                                               spec_number(param.max_value));
  }
}

DetectorSpec& DetectorSpec::accelerate(bool on) {
  const std::string& family = config_.family();
  const bool is_accel = family == "SARAA";
  const bool is_noaccel = family == "SARAA-noaccel";
  if ((on && !is_noaccel) || (!on && !is_accel)) return *this;
  DetectorConfig swapped(on ? "SARAA" : "SARAA-noaccel");
  for (const ParamSpec& param : config_.descriptor().params) {
    swapped.set(param.key, config_.get(param.key));
  }
  swapped.baseline = config_.baseline;
  config_ = swapped;
  return *this;
}

const DetectorConfig& DetectorSpec::config() const {
  validate_config(config_);
  return config_;
}

}  // namespace rejuv::core
