#include "core/spec.h"

#include <cctype>
#include <charconv>
#include <cmath>

#include "common/expect.h"

namespace rejuv::core {

namespace {

std::string lower(std::string_view text) {
  std::string result(text);
  for (char& c : result) c = static_cast<char>(std::tolower(static_cast<unsigned char>(c)));
  return result;
}

std::string_view trim(std::string_view text) {
  while (!text.empty() && std::isspace(static_cast<unsigned char>(text.front()))) {
    text.remove_prefix(1);
  }
  while (!text.empty() && std::isspace(static_cast<unsigned char>(text.back()))) {
    text.remove_suffix(1);
  }
  return text;
}

[[noreturn]] void fail(std::string_view text, const std::string& why) {
  throw std::invalid_argument("bad detector spec \"" + std::string(text) + "\": " + why);
}

double parse_number(std::string_view text, std::string_view token) {
  const std::string_view value = trim(token);
  double result = 0.0;
  const auto [ptr, ec] = std::from_chars(value.data(), value.data() + value.size(), result);
  if (ec != std::errc{} || ptr != value.data() + value.size() || !std::isfinite(result)) {
    std::string why = "\"";
    why += token;
    why += "\" is not a number";
    fail(text, why);
  }
  return result;
}

std::size_t parse_count(std::string_view text, std::string_view key, std::string_view token) {
  const double value = parse_number(text, token);
  if (value < 1.0 || value != std::floor(value)) {
    fail(text, std::string(key) + " must be a positive integer");
  }
  return static_cast<std::size_t>(value);
}

}  // namespace

DetectorConfig parse_spec(std::string_view text) {
  const std::string_view spec = trim(text);
  if (spec.empty()) fail(text, "empty spec");

  const std::size_t open = spec.find('(');
  std::string_view name = trim(spec.substr(0, open));
  std::string_view args;
  if (open != std::string_view::npos) {
    if (spec.back() != ')') fail(text, "missing closing parenthesis");
    args = spec.substr(open + 1, spec.size() - open - 2);
  }

  DetectorConfig config;
  const std::string name_lower = lower(name);
  if (name_lower == "none") {
    config.algorithm = Algorithm::kNone;
  } else if (name_lower == "static") {
    config.algorithm = Algorithm::kStatic;
  } else if (name_lower == "sraa") {
    config.algorithm = Algorithm::kSraa;
  } else if (name_lower == "saraa") {
    config.algorithm = Algorithm::kSaraa;
  } else if (name_lower == "saraa-noaccel") {
    config.algorithm = Algorithm::kSaraa;
    config.saraa_accelerate = false;
  } else if (name_lower == "clta") {
    config.algorithm = Algorithm::kClta;
  } else {
    fail(text, "unknown algorithm \"" + std::string(name) + "\"");
  }

  while (!args.empty()) {
    const std::size_t comma = args.find(',');
    const std::string_view kv =
        comma == std::string_view::npos ? args : args.substr(0, comma);
    args = comma == std::string_view::npos ? std::string_view{} : args.substr(comma + 1);

    const std::size_t eq = kv.find('=');
    if (eq == std::string_view::npos) fail(text, "expected key=value, got \"" + std::string(kv) + "\"");
    const std::string key = lower(trim(kv.substr(0, eq)));
    const std::string_view value = kv.substr(eq + 1);
    if (key == "n") {
      config.sample_size = parse_count(text, key, value);
    } else if (key == "k") {
      config.buckets = parse_count(text, key, value);
    } else if (key == "d") {
      config.depth = static_cast<int>(parse_count(text, key, value));
    } else if (key == "z") {
      config.quantile_z = parse_number(text, value);
    } else if (key == "mu") {
      config.baseline.mean = parse_number(text, value);
    } else if (key == "sigma") {
      config.baseline.stddev = parse_number(text, value);
    } else {
      fail(text, "unknown key \"" + key + "\"");
    }
  }

  validate_config(config);
  return config;
}

void validate_config(const DetectorConfig& config) {
  if (config.algorithm == Algorithm::kNone) return;
  validate(config.baseline);
  REJUV_EXPECT(config.sample_size >= 1, "sample size n must be at least 1");
  REJUV_EXPECT(config.buckets >= 1, "bucket count K must be at least 1");
  REJUV_EXPECT(config.depth >= 1, "bucket depth D must be at least 1");
  if (config.algorithm == Algorithm::kClta) {
    REJUV_EXPECT(std::isfinite(config.quantile_z) && config.quantile_z > 0.0,
                 "CLTA z must be positive and finite");
  }
}

const DetectorConfig& DetectorSpec::config() const {
  validate_config(config_);
  return config_;
}

}  // namespace rejuv::core
