// Entropy — distribution-shape aging signal over response-time histograms.
//
// The CHAOS line of related work observes that software aging does not only
// move the mean of the response-time distribution — it deforms its *shape*:
// an aging server smears a tight unimodal distribution into heavy tails and
// stutter modes long before the mean crosses an SLA threshold. This family
// bins each disjoint window of w observations into m fixed, baseline-derived
// bins spanning muX +/- 2 sigmaX (with clamped overflow bins), computes the
// normalized Shannon entropy H in [0, 1] of the window histogram, and
// learns a reference H_ref from the first c windows after start or
// rejuvenation. A window whose entropy departs from H_ref by more than t
// *and* whose mean sits above the baseline mean counts as aging evidence;
// r consecutive such windows trigger rejuvenation. The mean gate keeps a
// benign narrowing of the distribution (entropy drop with good response
// times) from burning a rejuvenation.
#pragma once

#include <cstdint>
#include <string>
#include <vector>

#include "core/detector.h"
#include "core/registry.h"

namespace rejuv::core {

/// Registry descriptor of the "Entropy" family (params w, m, c, t, r).
DetectorDescriptor entropy_descriptor();

/// Parameters of Entropy: window, bins, calibration, threshold, run length.
struct EntropyParams {
  std::size_t window = 50;      ///< w: observations per entropy window (>= 2)
  std::size_t bins = 10;        ///< m: histogram bins over muX +/- 2 sigmaX (>= 2)
  std::size_t calibration = 4;  ///< c: windows that establish the entropy reference
  double threshold = 0.15;      ///< t: |H - H_ref| that counts as a deviation
  std::size_t run = 2;          ///< r: consecutive deviating windows to trigger
};

class Entropy final : public Detector {
 public:
  Entropy(EntropyParams params, Baseline baseline);

  Decision observe(double value) override;
  void reset() override;
  std::string name() const override;
  const Baseline& baseline() const override { return baseline_; }
  obs::DetectorSnapshot snapshot() const override;
  DetectorState save_state() const override;
  void restore_state(const DetectorState& state) override;

  const EntropyParams& params() const noexcept { return params_; }
  bool reference_ready() const noexcept { return calibrated_windows_ >= params_.calibration; }
  /// The learned entropy reference; only meaningful once reference_ready().
  double reference_entropy() const noexcept;

 private:
  std::size_t bin_index(double value) const noexcept;
  /// Normalized Shannon entropy of the completed window histogram.
  double window_entropy() const noexcept;
  void clear_window() noexcept;

  EntropyParams params_;
  Baseline baseline_;
  double bin_low_ = 0.0;    ///< left edge of bin 0: muX - 2 sigmaX
  double bin_width_ = 0.0;  ///< 4 sigmaX / m
  std::vector<std::uint64_t> counts_;  ///< histogram of the window in progress
  std::uint64_t window_count_ = 0;     ///< observations in the window so far
  double window_sum_ = 0.0;
  std::uint64_t calibrated_windows_ = 0;  ///< completed calibration windows
  double reference_sum_ = 0.0;            ///< sum of calibration-window entropies
  std::uint64_t deviation_run_ = 0;       ///< consecutive deviating windows
  double last_entropy_ = 0.0;             ///< most recent completed window's H
  double last_average_ = 0.0;             ///< most recent completed window's mean
};

}  // namespace rejuv::core
