#include "core/bucket_cascade.h"

#include "common/expect.h"

namespace rejuv::core {

BucketCascade::BucketCascade(int depth, std::size_t buckets)
    : depth_(depth), bucket_count_(buckets) {
  REJUV_EXPECT(depth >= 1, "bucket depth D must be at least 1");
  REJUV_EXPECT(buckets >= 1, "bucket count K must be at least 1");
}

BucketCascade::Transition BucketCascade::update(bool exceeded) {
  // Fig. 6: d := d +/- 1, then the four guarded assignments in order.
  fill_ += exceeded ? 1 : -1;

  Transition transition = Transition::kNone;
  if (fill_ > depth_) {
    fill_ = 0;
    ++bucket_;
    transition = Transition::kEscalated;
  }
  if (fill_ < 0 && bucket_ > 0) {
    fill_ = depth_;
    --bucket_;
    transition = Transition::kDeescalated;
  }
  if (fill_ < 0 && bucket_ == 0) {
    fill_ = 0;
  }
  if (bucket_ == bucket_count_) {
    reset();
    return Transition::kTriggered;
  }
  return transition;
}

void BucketCascade::reset() noexcept {
  fill_ = 0;
  bucket_ = 0;
}

void BucketCascade::restore(std::size_t bucket, int fill) {
  REJUV_EXPECT(bucket < bucket_count_, "restored bucket pointer out of range");
  REJUV_EXPECT(fill >= 0 && fill <= depth_, "restored fill out of range");
  bucket_ = bucket;
  fill_ = fill;
}

}  // namespace rejuv::core
