// RejuvenationController: operational wrapper around a detector.
//
// Production deployments need more than the raw decision stream: a count of
// triggers, the observation indices at which they happened (for post-mortem
// correlation with deployment events), and an optional cooldown that
// suppresses re-triggering for a number of observations after a
// rejuvenation (rejuvenation itself perturbs response times, and a detector
// fed its own aftermath could oscillate).
#pragma once

#include <cstdint>
#include <memory>
#include <span>
#include <vector>

#include "core/detector.h"
#include "obs/metrics.h"
#include "obs/tracer.h"

namespace rejuv::core {

class RejuvenationController {
 public:
  /// Takes ownership of `detector`. A nullptr is normalized to a
  /// NullDetector ("never rejuvenate"), so the controller always holds a
  /// live detector and no call path needs a null check.
  /// `cooldown_observations`: number of observations after a trigger during
  /// which further triggers are suppressed and the detector is not fed.
  explicit RejuvenationController(std::unique_ptr<Detector> detector,
                                  std::uint64_t cooldown_observations = 0);

  /// Feeds one observation; true means rejuvenate now.
  bool observe(double value);

  /// Feeds a batch; returns the number of triggers in it. Trigger indices,
  /// cooldown handling and emitted events are identical to calling
  /// observe() per value — the cooldown-free stretches route through
  /// Detector::observe_all, which is the monitor's batch-drain hot path.
  std::size_t observe_all(std::span<const double> values);

  /// Informs the controller of an externally initiated rejuvenation so the
  /// detector state and cooldown are reset consistently.
  void notify_external_rejuvenation();

  std::uint64_t observations() const noexcept { return observations_; }
  std::uint64_t rejuvenations() const noexcept { return trigger_indices_.size(); }
  /// 1-based observation indices at which triggers fired.
  const std::vector<std::uint64_t>& trigger_indices() const noexcept { return trigger_indices_; }

  /// False when the controller holds the no-op NullDetector (explicitly via
  /// Algorithm::kNone or normalized from a nullptr).
  bool has_detector() const noexcept { return !noop_; }
  const Detector& detector() const noexcept { return *detector_; }

  /// The detector's structured state right now.
  obs::DetectorSnapshot detector_snapshot() const { return detector_->snapshot(); }

  /// Attaches a tracer (forwarded to the detector): the controller emits
  /// trigger events carrying the detector snapshot and cooldown-suppression
  /// events. nullptr detaches.
  void set_tracer(obs::Tracer* tracer) noexcept;

  /// Publishes trigger/suppression counts into `registry` (handles are
  /// cached once; nullptr detaches).
  void set_metrics(obs::MetricsRegistry* registry);

  /// Snapshot of the controller's resumable state (counters, cooldown,
  /// trigger history, detector state) for the checkpoint journal.
  ControllerState save_state() const;
  /// Restores a snapshot taken by save_state() on an identically configured
  /// controller; throws if the detector spec does not match.
  void restore_state(const ControllerState& state);

 private:
  void record_trigger();

  std::unique_ptr<Detector> detector_;
  bool noop_;
  std::uint64_t cooldown_observations_;
  std::uint64_t cooldown_remaining_ = 0;
  std::uint64_t observations_ = 0;
  std::vector<std::uint64_t> trigger_indices_;
  obs::Tracer* tracer_ = nullptr;
  obs::Counter* trigger_counter_ = nullptr;
  obs::Counter* suppression_counter_ = nullptr;
};

}  // namespace rejuv::core
