// RejuvenationController: operational wrapper around a detector.
//
// Production deployments need more than the raw decision stream: a count of
// triggers, the observation indices at which they happened (for post-mortem
// correlation with deployment events), and an optional cooldown that
// suppresses re-triggering for a number of observations after a
// rejuvenation (rejuvenation itself perturbs response times, and a detector
// fed its own aftermath could oscillate).
#pragma once

#include <cstdint>
#include <memory>
#include <vector>

#include "core/detector.h"
#include "obs/metrics.h"
#include "obs/tracer.h"

namespace rejuv::core {

class RejuvenationController {
 public:
  /// Takes ownership of `detector` (may be null: never rejuvenates).
  /// `cooldown_observations`: number of observations after a trigger during
  /// which further triggers are suppressed and the detector is not fed.
  explicit RejuvenationController(std::unique_ptr<Detector> detector,
                                  std::uint64_t cooldown_observations = 0);

  /// Feeds one observation; true means rejuvenate now.
  bool observe(double value);

  /// Informs the controller of an externally initiated rejuvenation so the
  /// detector state and cooldown are reset consistently.
  void notify_external_rejuvenation();

  std::uint64_t observations() const noexcept { return observations_; }
  std::uint64_t rejuvenations() const noexcept { return trigger_indices_.size(); }
  /// 1-based observation indices at which triggers fired.
  const std::vector<std::uint64_t>& trigger_indices() const noexcept { return trigger_indices_; }

  bool has_detector() const noexcept { return detector_ != nullptr; }
  const Detector& detector() const;

  /// The detector's structured state right now (base view if detector-less).
  obs::DetectorSnapshot detector_snapshot() const;

  /// Attaches a tracer (forwarded to the detector): the controller emits
  /// trigger events carrying the detector snapshot and cooldown-suppression
  /// events. nullptr detaches.
  void set_tracer(obs::Tracer* tracer) noexcept;

  /// Publishes trigger/suppression counts into `registry` (handles are
  /// cached once; nullptr detaches).
  void set_metrics(obs::MetricsRegistry* registry);

 private:
  std::unique_ptr<Detector> detector_;
  std::uint64_t cooldown_observations_;
  std::uint64_t cooldown_remaining_ = 0;
  std::uint64_t observations_ = 0;
  std::vector<std::uint64_t> trigger_indices_;
  obs::Tracer* tracer_ = nullptr;
  obs::Counter* trigger_counter_ = nullptr;
  obs::Counter* suppression_counter_ = nullptr;
};

}  // namespace rejuv::core
