// Declarative detector configuration and construction.
//
// The experiment harness sweeps dozens of (algorithm, n, K, D) combinations;
// DetectorConfig is the value type those sweeps are written in, and
// make_detector turns one into a live Detector.
#pragma once

#include <cstddef>
#include <memory>
#include <string>

#include "core/clta.h"
#include "core/detector.h"
#include "core/saraa.h"
#include "core/sraa.h"
#include "core/static_rejuvenation.h"

namespace rejuv::core {

enum class Algorithm {
  kNone,    ///< never rejuvenate (the unmanaged baseline)
  kStatic,  ///< per-observation static algorithm of [1]
  kSraa,
  kSaraa,
  kClta,
};

/// Short identifier, e.g. "SRAA".
std::string algorithm_name(Algorithm algorithm);

struct DetectorConfig {
  Algorithm algorithm = Algorithm::kSraa;
  std::size_t sample_size = 1;  ///< n (SRAA/CLTA) or norig (SARAA); unused by kStatic
  std::size_t buckets = 1;      ///< K; unused by kClta
  int depth = 1;                ///< D; unused by kClta
  double quantile_z = 1.96;     ///< CLTA only
  bool saraa_accelerate = true;  ///< SARAA only; false = ablation without acceleration
  Baseline baseline{5.0, 5.0};  ///< the paper's muX = sigmaX = 5 default

  /// n * K * D, the budget the paper holds constant across configurations.
  std::size_t nkd_product() const noexcept {
    return sample_size * buckets * static_cast<std::size_t>(depth);
  }
};

/// Field-wise equality (spec round-trip tests compare parsed configs).
bool operator==(const DetectorConfig& a, const DetectorConfig& b);
inline bool operator!=(const DetectorConfig& a, const DetectorConfig& b) { return !(a == b); }

/// The Algorithm::kNone detector: consumes observations and never
/// rejuvenates (the unmanaged baseline). Having a real object instead of a
/// nullptr lets every consumer — controller, harness, monitor — feed the
/// detector unconditionally.
class NullDetector final : public Detector {
 public:
  explicit NullDetector(Baseline baseline = {}) : baseline_(baseline) {}

  Decision observe(double) override { return Decision::kContinue; }
  std::size_t observe_all(std::span<const double> values) override { return values.size(); }
  void reset() override {}
  std::string name() const override { return "None"; }
  const Baseline& baseline() const override { return baseline_; }

 private:
  Baseline baseline_;
};

/// Builds the configured detector; never null (Algorithm::kNone yields a
/// NullDetector that never rejuvenates).
std::unique_ptr<Detector> make_detector(const DetectorConfig& config);

/// Human-readable description, e.g. "SRAA(n=2,K=5,D=3)".
std::string describe(const DetectorConfig& config);

/// A detector that first estimates the baseline from an initial calibration
/// window (assumed healthy), then behaves as the configured algorithm with
/// the estimated (muX, sigmaX) — the paper's section 6 future-work item.
/// Observations consumed during calibration never trigger rejuvenation.
class CalibratingDetector final : public Detector {
 public:
  /// `config.baseline` is ignored; it is replaced by the estimate.
  CalibratingDetector(DetectorConfig config, std::uint64_t calibration_size);

  Decision observe(double value) override;
  /// Resets the inner detector only; the calibrated baseline is retained.
  void reset() override;
  std::string name() const override;
  /// Baseline so far: the estimate once calibrated, otherwise the config's
  /// placeholder.
  const Baseline& baseline() const override;
  /// The inner detector's snapshot once calibrated; before that, a view of
  /// the calibration progress (pending = observations consumed).
  obs::DetectorSnapshot snapshot() const override;
  /// Forwards the tracer to the inner detector (also on later creation).
  void set_tracer(obs::Tracer* tracer) noexcept override;
  /// Captures the calibration accumulator while calibrating, otherwise the
  /// inner detector's state plus the active baseline.
  DetectorState save_state() const override;
  /// Rebuilds the inner detector from the saved baseline when the saved
  /// state was post-calibration.
  void restore_state(const DetectorState& state) override;

  bool calibrated() const noexcept { return inner_ != nullptr; }

 private:
  DetectorConfig config_;
  BaselineEstimator estimator_;
  std::unique_ptr<Detector> inner_;
  Baseline active_baseline_;
};

}  // namespace rejuv::core
