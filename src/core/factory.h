// Declarative detector configuration and construction.
//
// The experiment harness sweeps dozens of detector configurations;
// DetectorConfig (core/registry.h) is the value type those sweeps are
// written in, and make_detector turns one into a live Detector by
// dispatching through the DetectorRegistry — the single construction path
// shared by the harness, the CLIs and the online monitor.
#pragma once

#include <cstddef>
#include <memory>
#include <string>

#include "core/clta.h"
#include "core/detector.h"
#include "core/registry.h"
#include "core/saraa.h"
#include "core/sraa.h"
#include "core/static_rejuvenation.h"

namespace rejuv::core {

/// Deprecated closed-world family handle, kept so pre-registry call sites
/// compile unchanged. New code names families by their registry string; the
/// enum covers only the built-ins that predate the registry.
enum class Algorithm {
  kNone,    ///< never rejuvenate (the unmanaged baseline)
  kStatic,  ///< per-observation static algorithm of [1]
  kSraa,
  kSaraa,
  kClta,
};

/// Registry family name for a legacy enum value, e.g. "SRAA".
std::string algorithm_name(Algorithm algorithm);

/// The "None" detector: consumes observations and never rejuvenates (the
/// unmanaged baseline). Having a real object instead of a nullptr lets
/// every consumer — controller, harness, monitor — feed the detector
/// unconditionally.
class NullDetector final : public Detector {
 public:
  explicit NullDetector(Baseline baseline = {}) : baseline_(baseline) {}

  Decision observe(double) override { return Decision::kContinue; }
  std::size_t observe_all(std::span<const double> values) override { return values.size(); }
  void reset() override {}
  std::string name() const override { return "None"; }
  const Baseline& baseline() const override { return baseline_; }

 private:
  Baseline baseline_;
};

/// Registry descriptor of the "None" family.
DetectorDescriptor null_descriptor();

/// Builds the configured detector through the registry; never null (the
/// "None" family yields a NullDetector that never rejuvenates). Throws
/// std::invalid_argument on an invalid configuration.
std::unique_ptr<Detector> make_detector(const DetectorConfig& config);

/// Canonical spec string derived from the family's schema, e.g.
/// "SRAA(n=2,K=5,D=3)" — always identical to make_detector(config)->name(),
/// and parse_spec(describe(config)) == config.
std::string describe(const DetectorConfig& config);

/// A detector that first estimates the baseline from an initial calibration
/// window (assumed healthy), then behaves as the configured algorithm with
/// the estimated (muX, sigmaX) — the paper's section 6 future-work item.
/// Observations consumed during calibration never trigger rejuvenation.
/// Works for any registered family.
class CalibratingDetector final : public Detector {
 public:
  /// `config.baseline` is ignored; it is replaced by the estimate.
  CalibratingDetector(DetectorConfig config, std::uint64_t calibration_size);

  Decision observe(double value) override;
  /// Batch path with an exact split at the calibration boundary: the head
  /// of the batch feeds the estimator (never triggering), the tail past the
  /// boundary goes to the freshly built inner detector's own observe_all.
  /// Decisions are byte-identical to looping observe() — a batch that
  /// straddles the boundary must behave exactly as if it had arrived one
  /// value at a time (tests/property_test.cpp pins the straddle).
  std::size_t observe_all(std::span<const double> values) override;
  /// Resets the inner detector only; the calibrated baseline is retained.
  void reset() override;
  std::string name() const override;
  /// Baseline so far: the estimate once calibrated, otherwise the config's
  /// placeholder.
  const Baseline& baseline() const override;
  /// The inner detector's snapshot once calibrated; before that, a view of
  /// the calibration progress (pending = observations consumed).
  obs::DetectorSnapshot snapshot() const override;
  /// Forwards the tracer to the inner detector (also on later creation).
  void set_tracer(obs::Tracer* tracer) noexcept override;
  /// Captures the calibration accumulator while calibrating, otherwise the
  /// inner detector's state plus the active baseline.
  DetectorState save_state() const override;
  /// Rebuilds the inner detector from the saved baseline when the saved
  /// state was post-calibration.
  void restore_state(const DetectorState& state) override;

  bool calibrated() const noexcept { return inner_ != nullptr; }

 private:
  DetectorConfig config_;
  BaselineEstimator estimator_;
  std::unique_ptr<Detector> inner_;
  Baseline active_baseline_;
};

}  // namespace rejuv::core
