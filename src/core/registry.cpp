#include "core/registry.h"

#include <cctype>
#include <charconv>
#include <cmath>

#include "common/expect.h"
#include "core/adaptive.h"
#include "core/clta.h"
#include "core/ediv.h"
#include "core/entropy_detector.h"
#include "core/factory.h"
#include "core/mk_detector.h"
#include "core/saraa.h"
#include "core/sraa.h"
#include "core/static_rejuvenation.h"

namespace rejuv::core {

namespace {

bool iequals(std::string_view a, std::string_view b) {
  if (a.size() != b.size()) return false;
  for (std::size_t i = 0; i < a.size(); ++i) {
    if (std::tolower(static_cast<unsigned char>(a[i])) !=
        std::tolower(static_cast<unsigned char>(b[i]))) {
      return false;
    }
  }
  return true;
}

}  // namespace

ParamSpec count_param(std::string key, std::uint64_t default_value, std::string doc,
                      std::uint64_t min_value) {
  ParamSpec spec;
  spec.key = std::move(key);
  spec.kind = ParamSpec::Kind::kCount;
  spec.default_value = static_cast<double>(default_value);
  spec.min_value = static_cast<double>(min_value);
  spec.doc = std::move(doc);
  return spec;
}

ParamSpec real_param(std::string key, double default_value, std::string doc, double min_value,
                     bool strict_min) {
  ParamSpec spec;
  spec.key = std::move(key);
  spec.kind = ParamSpec::Kind::kReal;
  spec.default_value = default_value;
  spec.min_value = min_value;
  spec.strict_min = strict_min;
  spec.doc = std::move(doc);
  return spec;
}

DetectorRegistry& DetectorRegistry::instance() {
  // The built-in families are registered on first use rather than from
  // static initializers: a static-library consumer that never references a
  // family's translation unit would silently drop its registration.
  static DetectorRegistry* registry = [] {
    auto* fresh = new DetectorRegistry();
    fresh->register_family(null_descriptor());
    fresh->register_family(static_descriptor());
    fresh->register_family(sraa_descriptor());
    fresh->register_family(saraa_descriptor());
    fresh->register_family(saraa_noaccel_descriptor());
    fresh->register_family(clta_descriptor());
    fresh->register_family(adaptive_descriptor());
    fresh->register_family(ediv_descriptor());
    fresh->register_family(entropy_descriptor());
    fresh->register_family(mk_descriptor());
    return fresh;
  }();
  return *registry;
}

void DetectorRegistry::register_family(DetectorDescriptor descriptor) {
  REJUV_EXPECT(!descriptor.name.empty(), "detector family name must not be empty");
  REJUV_EXPECT(descriptor.make != nullptr,
               "detector family \"" + descriptor.name + "\" needs a factory function");
  for (std::size_t i = 0; i < descriptor.params.size(); ++i) {
    const ParamSpec& param = descriptor.params[i];
    REJUV_EXPECT(!param.key.empty(),
                 "family \"" + descriptor.name + "\" has a parameter with an empty key");
    REJUV_EXPECT(!iequals(param.key, "mu") && !iequals(param.key, "sigma"),
                 "family \"" + descriptor.name + "\" parameter key \"" + param.key +
                     "\" collides with the universal baseline keys");
    for (std::size_t j = 0; j < i; ++j) {
      REJUV_EXPECT(!iequals(param.key, descriptor.params[j].key),
                   "family \"" + descriptor.name + "\" has duplicate parameter key \"" +
                       param.key + "\"");
    }
  }
  const std::lock_guard<std::mutex> lock(mutex_);
  for (const auto& existing : families_) {
    REJUV_EXPECT(!iequals(existing->name, descriptor.name),
                 "detector family \"" + descriptor.name + "\" is already registered");
  }
  families_.push_back(std::make_unique<const DetectorDescriptor>(std::move(descriptor)));
}

const DetectorDescriptor* DetectorRegistry::find(std::string_view name) const {
  const std::lock_guard<std::mutex> lock(mutex_);
  for (const auto& family : families_) {
    if (iequals(family->name, name)) return family.get();
  }
  return nullptr;
}

const DetectorDescriptor& DetectorRegistry::at(std::string_view name) const {
  const DetectorDescriptor* descriptor = find(name);
  if (descriptor != nullptr) return *descriptor;
  std::string known;
  for (const std::string& family : family_names()) {
    if (!known.empty()) known += ", ";
    known += family;
  }
  throw std::invalid_argument("unknown detector family \"" + std::string(name) +
                              "\"; registered families: " + known);
}

std::vector<std::string> DetectorRegistry::family_names() const {
  const std::lock_guard<std::mutex> lock(mutex_);
  std::vector<std::string> names;
  names.reserve(families_.size());
  for (const auto& family : families_) names.push_back(family->name);
  return names;
}

DetectorConfig::DetectorConfig() : DetectorConfig("SRAA") {}

DetectorConfig::DetectorConfig(std::string_view family)
    : descriptor_(&DetectorRegistry::instance().at(family)) {
  values_.reserve(descriptor_->params.size());
  for (const ParamSpec& param : descriptor_->params) values_.push_back(param.default_value);
}

bool DetectorConfig::has(std::string_view key) const noexcept {
  for (const ParamSpec& param : descriptor_->params) {
    if (iequals(param.key, key)) return true;
  }
  return false;
}

double DetectorConfig::get(std::string_view key) const {
  for (std::size_t i = 0; i < descriptor_->params.size(); ++i) {
    if (iequals(descriptor_->params[i].key, key)) return values_[i];
  }
  throw std::invalid_argument("detector family \"" + descriptor_->name +
                              "\" has no parameter \"" + std::string(key) + "\"");
}

std::size_t DetectorConfig::get_count(std::string_view key) const {
  return static_cast<std::size_t>(std::llround(get(key)));
}

DetectorConfig& DetectorConfig::set(std::string_view key, double value) {
  for (std::size_t i = 0; i < descriptor_->params.size(); ++i) {
    if (iequals(descriptor_->params[i].key, key)) {
      values_[i] = value;
      return *this;
    }
  }
  throw std::invalid_argument("detector family \"" + descriptor_->name +
                              "\" has no parameter \"" + std::string(key) + "\"");
}

std::size_t DetectorConfig::nkd_product() const noexcept {
  std::size_t product = 1;
  for (const char* key : {"n", "K", "D"}) {
    if (has(key)) product *= static_cast<std::size_t>(std::llround(get(key)));
  }
  return product;
}

bool operator==(const DetectorConfig& a, const DetectorConfig& b) {
  return a.family() == b.family() && a.values() == b.values() &&
         a.baseline.mean == b.baseline.mean && a.baseline.stddev == b.baseline.stddev;
}

std::string spec_number(double value) {
  char buffer[32];
  const auto result = std::to_chars(buffer, buffer + sizeof(buffer), value);
  return std::string(buffer, result.ptr);
}

}  // namespace rejuv::core
