// Checkpointable detector and controller state.
//
// A monitor that crashes mid-escalation must not lose the evidence the
// cascade has accumulated: on restart it would silently re-observe the
// degradation from scratch, exactly the "significant and lasting" window the
// paper's detectors exist to close. DetectorState is the flat superset of
// every algorithm's mutable decision state — bucket pointer N and fill d,
// the partially accumulated averaging window, SARAA's current sample size,
// and the calibration accumulator — and ControllerState adds the
// operational wrapper's counters (observation index, cooldown, trigger
// history). Both are plain value types; serialization to the versioned
// JSONL checkpoint journal lives in monitor/checkpoint.h.
//
// The restore contract is bit-exactness: a detector restored from a saved
// state and fed the remaining stream suffix makes byte-identical decisions
// to an uninterrupted detector fed the whole stream (the chaos suite pins
// this down per algorithm).
#pragma once

#include <cstdint>
#include <string>
#include <vector>

namespace rejuv::core {

/// Version of the checkpoint state schema. Bump when fields change meaning;
/// readers reject records with a version they do not understand.
inline constexpr std::uint32_t kCheckpointVersion = 1;

/// Flat, algorithm-agnostic snapshot of a detector's mutable decision
/// state. Fields that do not apply to an algorithm keep their defaults;
/// `algorithm` carries Detector::name() so restore can reject a checkpoint
/// saved by a differently configured detector.
struct DetectorState {
  std::string algorithm;  ///< Detector::name() at save time

  // Bucket cascade (Static / SRAA / SARAA).
  bool has_cascade = false;
  std::uint64_t bucket = 0;  ///< N
  std::int64_t fill = 0;     ///< d

  // Averaging window (SRAA / SARAA / CLTA): the partially accumulated block.
  bool has_window = false;
  std::uint64_t window_length = 0;  ///< length of the block in progress
  std::uint64_t window_next = 0;    ///< length of the following block
  std::uint64_t window_count = 0;   ///< observations accumulated so far
  double window_sum = 0.0;          ///< running sum of the partial block
  std::uint64_t current_n = 0;      ///< SARAA's schedule-controlled n

  double last_average = 0.0;  ///< most recent completed window average

  // Calibration (CalibratingDetector): the Welford accumulator while the
  // baseline estimate is still being collected, and the baseline in force.
  bool calibrating = false;
  std::uint64_t calibration_count = 0;
  double calibration_mean = 0.0;
  double calibration_m2 = 0.0;
  double calibration_min = 0.0;
  double calibration_max = 0.0;
  double baseline_mean = 0.0;
  double baseline_stddev = 0.0;

  // Registry extension: family-specific state beyond the flat fields above.
  // `extra_tag` is the family descriptor's checkpoint_tag at save time;
  // restore validates it (and the payload sizes) before trusting the
  // vectors, so a checkpoint can never be decoded by the wrong family.
  // Older journals without these keys restore with all three empty, which
  // the pre-registry families accept unchanged.
  std::string extra_tag;
  std::vector<std::uint64_t> extra_u64;  ///< counters, ring sizes, bins
  std::vector<double> extra_f64;         ///< accumulators, buffered values
};

/// RejuvenationController state: everything needed to resume the decision
/// stream at observation `observations` + 1.
struct ControllerState {
  std::uint64_t observations = 0;
  std::uint64_t cooldown_remaining = 0;
  std::vector<std::uint64_t> trigger_indices;  ///< 1-based, absolute
  DetectorState detector;
};

}  // namespace rejuv::core
