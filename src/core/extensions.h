// Comparison detectors beyond the paper's three algorithms.
//
// - QuantileThresholdDetector: the strawman §4.1 dismisses — trigger when a
//   single observation exceeds a pre-determined upper quantile of the
//   healthy RT distribution. Kept as a baseline precisely because it is
//   "not robust for short-term deviations".
// - DeterministicThresholdPolicy / RiskBasedPolicy: the two policies of
//   Bobbio, Sereno & Anglano [5], which the paper cites as its closest
//   relatives. Both monitor a degradation level against a maximum threshold;
//   the deterministic policy rejuvenates as soon as the threshold is
//   reached, the risk-based one rejuvenates with a probability that grows
//   with the excursion above a confidence level.
// - TrendDetector: a Mann-Kendall trend monitor in the spirit of the
//   measurement-based aging estimation of Trivedi et al. [15].
#pragma once

#include <cstdint>
#include <string>
#include <vector>

#include "common/rng.h"
#include "core/detector.h"
#include "stats/p2_quantile.h"
#include "stats/trend.h"

namespace rejuv::core {

/// Triggers when `consecutive_exceedances` successive observations exceed
/// the threshold (1 = the pure quantile rule).
class QuantileThresholdDetector final : public Detector {
 public:
  /// `threshold` is the pre-computed quantile value (e.g. from
  /// queueing::MmcQueue::response_time_quantile).
  QuantileThresholdDetector(double threshold, std::uint64_t consecutive_exceedances,
                            Baseline baseline);

  Decision observe(double value) override;
  void reset() override;
  std::string name() const override;
  const Baseline& baseline() const override { return baseline_; }
  obs::DetectorSnapshot snapshot() const override;

  double threshold() const noexcept { return threshold_; }
  std::uint64_t run_length() const noexcept { return run_length_; }

 private:
  double threshold_;
  std::uint64_t required_;
  Baseline baseline_;
  std::uint64_t run_length_ = 0;
  double last_value_ = 0.0;
};

/// Bobbio et al.'s deterministic policy: rejuvenate as soon as the observed
/// degradation level reaches the maximum threshold.
class DeterministicThresholdPolicy final : public Detector {
 public:
  DeterministicThresholdPolicy(double max_degradation_level, Baseline baseline);

  Decision observe(double value) override;
  void reset() override {}
  std::string name() const override;
  const Baseline& baseline() const override { return baseline_; }
  obs::DetectorSnapshot snapshot() const override;

 private:
  double max_level_;
  Baseline baseline_;
  double last_value_ = 0.0;
};

/// Bobbio et al.'s risk-based policy: between the confidence level and the
/// maximum threshold, rejuvenate with probability proportional to the
/// excursion; at or above the maximum, always rejuvenate.
class RiskBasedPolicy final : public Detector {
 public:
  /// `confidence_level` < `max_degradation_level`. `seed` makes the
  /// randomized decision reproducible.
  RiskBasedPolicy(double confidence_level, double max_degradation_level, Baseline baseline,
                  std::uint64_t seed);

  Decision observe(double value) override;
  void reset() override {}
  std::string name() const override;
  const Baseline& baseline() const override { return baseline_; }
  obs::DetectorSnapshot snapshot() const override;

  /// Rejuvenation probability assigned to an observation at `value`.
  double rejuvenation_probability(double value) const;

 private:
  double confidence_level_;
  double max_level_;
  Baseline baseline_;
  common::RngStream rng_;
  double last_value_ = 0.0;
};

/// Self-calibrating quantile rule: estimates the chosen upper quantile of
/// the *healthy* metric online (P² algorithm) during a calibration window,
/// freezes it, and then behaves as a QuantileThreshold policy against the
/// estimated value. Combines the paper's future-work direction (learning
/// "normal behaviour" from measurements) with the threshold policy family.
class AdaptiveQuantileDetector final : public Detector {
 public:
  /// `quantile` in (0, 1), e.g. 0.995; `calibration_size` >= 100 healthy
  /// observations; `consecutive_exceedances` as in QuantileThresholdDetector.
  AdaptiveQuantileDetector(double quantile, std::uint64_t calibration_size,
                           std::uint64_t consecutive_exceedances, Baseline baseline);

  Decision observe(double value) override;
  /// Keeps the calibrated threshold; clears the exceedance run.
  void reset() override;
  std::string name() const override;
  const Baseline& baseline() const override { return baseline_; }
  obs::DetectorSnapshot snapshot() const override;

  bool calibrated() const noexcept { return estimator_.count() >= calibration_size_; }
  /// The frozen threshold; only meaningful once calibrated().
  double threshold() const;

 private:
  double quantile_p_;
  std::uint64_t calibration_size_;
  std::uint64_t required_;
  Baseline baseline_;
  stats::P2Quantile estimator_;
  double threshold_ = 0.0;
  std::uint64_t run_length_ = 0;
  double last_value_ = 0.0;
};

/// Mann-Kendall trend monitor: collects disjoint windows of `window`
/// observations and triggers on a significant increasing trend whose Sen
/// slope exceeds `min_slope` per observation.
class TrendDetector final : public Detector {
 public:
  TrendDetector(std::size_t window, double z_alpha, double min_slope, Baseline baseline);

  Decision observe(double value) override;
  void reset() override;
  std::string name() const override;
  const Baseline& baseline() const override { return baseline_; }
  obs::DetectorSnapshot snapshot() const override;

  std::size_t pending_observations() const noexcept { return buffer_.size(); }

 private:
  std::size_t window_;
  double z_alpha_;
  double min_slope_;
  Baseline baseline_;
  std::vector<double> buffer_;
  double last_value_ = 0.0;
};

}  // namespace rejuv::core
