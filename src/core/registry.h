// The open detector registry: families, parameter schemas, configurations.
//
// The paper ships three algorithms, but the monitoring problem does not stop
// there — related work adds workload-shift-aware detectors, change-point
// detectors, entropy signals and trend tests, each with its own knobs. A
// closed Algorithm enum plus a fixed-field DetectorConfig meant every new
// family edited five files in lockstep (factory switch, spec parser, spec
// printer, builder, validation). The registry inverts that: each family
// publishes one DetectorDescriptor — canonical name, typed parameter schema
// with defaults and ranges, factory function, checkpoint tag — and
// construction (make_detector), parsing (parse_spec), printing (describe)
// and validation (validate_config) are all derived from the schema. A family
// registered at runtime is immediately reachable from every consumer: the
// harness sweeps, the rejuv-sim and rejuv-monitor CLIs, checkpointing and
// the trace tools, with zero per-tool edits.
//
// The schema guarantees the round-trip parse_spec(describe(cfg)) == cfg for
// arbitrary families: describe() prints every parameter in schema order
// (counts as integers, reals in std::to_chars shortest round-trip form), and
// parse_spec() maps keys back through the same schema. Detector::name() is
// required to print the identical string, so a spec names the same detector
// everywhere it appears.
#pragma once

#include <cstddef>
#include <cstdint>
#include <functional>
#include <limits>
#include <memory>
#include <mutex>
#include <string>
#include <string_view>
#include <vector>

#include "core/baseline.h"

namespace rejuv::core {

class Detector;
struct DetectorConfig;

/// One knob of a detector family: key, type, default and valid range.
struct ParamSpec {
  enum class Kind {
    kCount,  ///< positive integer (window sizes, bucket counts, depths)
    kReal,   ///< finite real (quantiles, thresholds, slopes)
  };

  std::string key;  ///< canonical case as printed by describe(), e.g. "K"
  Kind kind = Kind::kReal;
  double default_value = 0.0;
  double min_value = 0.0;  ///< inclusive unless strict_min
  bool strict_min = false;
  double max_value = std::numeric_limits<double>::infinity();
  std::string doc;  ///< one-line meaning, surfaced by --list-detectors
};

/// Schema helper: a positive-integer parameter (min 1 unless overridden).
ParamSpec count_param(std::string key, std::uint64_t default_value, std::string doc,
                      std::uint64_t min_value = 1);

/// Schema helper: a real parameter bounded below (inclusive by default).
ParamSpec real_param(std::string key, double default_value, std::string doc,
                     double min_value = -std::numeric_limits<double>::infinity(),
                     bool strict_min = false);

/// Everything the registry knows about one detector family. `make` receives
/// a validated DetectorConfig of this family and returns a live detector
/// whose name() equals describe(config).
struct DetectorDescriptor {
  std::string name;     ///< canonical spec name, e.g. "SARAA-noaccel"
  std::string summary;  ///< one-line description for docs/CLI listings
  /// DetectorState::extra_tag this family writes ("" = uses only the flat
  /// DetectorState fields). Restore validates the tag before trusting the
  /// extension payload.
  std::string checkpoint_tag;
  /// false = the family ignores the (muX, sigmaX) baseline entirely, so
  /// validation does not require a positive sigma (the None family).
  bool needs_baseline = true;
  std::vector<ParamSpec> params;  ///< schema order == print order
  std::function<std::unique_ptr<Detector>(const DetectorConfig&)> make;
};

/// Process-wide family table. The built-in families register themselves
/// lazily on first use (no static-initializer order games, no
/// dead-stripping hazards in static libraries); additional families can be
/// registered at any time — tests register toy detectors to prove the
/// open-endedness — and become visible to parse_spec/make_detector/sweeps
/// immediately. Lookup is case-insensitive; descriptors are immutable and
/// their addresses stable once registered.
class DetectorRegistry {
 public:
  static DetectorRegistry& instance();

  DetectorRegistry(const DetectorRegistry&) = delete;
  DetectorRegistry& operator=(const DetectorRegistry&) = delete;

  /// Registers a family. Throws std::invalid_argument on a duplicate name,
  /// an empty name, a missing factory, or a malformed schema (duplicate or
  /// reserved keys, out-of-range defaults).
  void register_family(DetectorDescriptor descriptor);

  /// Case-insensitive lookup; nullptr when the family is unknown.
  const DetectorDescriptor* find(std::string_view name) const;

  /// Case-insensitive lookup; throws std::invalid_argument naming the token
  /// and listing every registered family when unknown.
  const DetectorDescriptor& at(std::string_view name) const;

  /// Canonical family names in registration order.
  std::vector<std::string> family_names() const;

 private:
  DetectorRegistry() = default;

  mutable std::mutex mutex_;
  std::vector<std::unique_ptr<const DetectorDescriptor>> families_;
};

/// A detector configuration: a registered family plus one value per schema
/// parameter and the SLA baseline. Values are held in schema order; get/set
/// address them by (case-insensitive) key. Range checking is deferred to
/// validate_config so a builder can pass through intermediate states.
struct DetectorConfig {
  /// The legacy default: SRAA with n = K = D = 1.
  DetectorConfig();

  /// A family's schema defaults; throws std::invalid_argument (listing the
  /// registered families) when `family` is unknown.
  explicit DetectorConfig(std::string_view family);

  const DetectorDescriptor& descriptor() const noexcept { return *descriptor_; }
  const std::string& family() const noexcept { return descriptor_->name; }

  /// True for the never-rejuvenate baseline family.
  bool is_null() const noexcept { return descriptor_->name == "None"; }

  bool has(std::string_view key) const noexcept;
  /// Parameter value by key; throws std::invalid_argument on unknown keys.
  double get(std::string_view key) const;
  /// get() narrowed to a count parameter (rounded; validated elsewhere).
  std::size_t get_count(std::string_view key) const;
  /// Sets a parameter by key (unchecked value; throws on unknown keys).
  DetectorConfig& set(std::string_view key, double value);

  /// Values in schema order (one per descriptor param).
  const std::vector<double>& values() const noexcept { return values_; }

  /// Product of the n/K/D parameters that exist in this family (absent
  /// parameters count as 1) — the budget the paper holds constant.
  std::size_t nkd_product() const noexcept;

  Baseline baseline{5.0, 5.0};  ///< the paper's muX = sigmaX = 5 default

 private:
  const DetectorDescriptor* descriptor_;  ///< registry-owned, never null
  std::vector<double> values_;
};

/// Field-wise equality: family, parameter values, baseline.
bool operator==(const DetectorConfig& a, const DetectorConfig& b);
inline bool operator!=(const DetectorConfig& a, const DetectorConfig& b) { return !(a == b); }

/// Shortest std::to_chars form that parses back to the identical double —
/// how describe() and every Detector::name() print real-valued parameters.
std::string spec_number(double value);

}  // namespace rejuv::core
