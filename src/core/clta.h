// CLTA — central-limit-theorem-based rejuvenation algorithm (paper Fig. 8).
//
// With a window large enough for the normal approximation (the paper uses
// n = 30), a single window average exceeding muX + z * sigmaX / sqrt(n)
// triggers rejuvenation immediately: the number of buckets and the bucket
// depth are implicitly one. z is a standard-normal quantile chosen for the
// acceptable false-alarm probability (1.96 for a nominal 2.5%; the exact
// false-alarm rate is slightly higher, see markov::SampleAverageDistribution).
//
// The trigger comparison is STRICT, matching the paper's Fig. 8 pseudo-code
// "if x̄u > muX + N * sigmaX / sqrt(n)": a window average exactly equal to
// the threshold does not rejuvenate. tests/clta_boundary_test.cpp pins this
// down (the continuous RT distribution makes equality a measure-zero event,
// but replayed/quantized traces can hit it).
#pragma once

#include <string>

#include "core/detector.h"
#include "core/registry.h"
#include "stats/quantiles.h"

namespace rejuv::core {

/// Registry descriptor of the "CLTA" family (params n, z).
DetectorDescriptor clta_descriptor();

/// Parameters of CLTA: window size n and normal quantile z (the paper's N).
struct CltaParams {
  std::size_t sample_size = 30;  ///< n
  double quantile_z = 1.96;      ///< N, e.g. the 97.5% standard-normal point
};

class Clta final : public Detector {
 public:
  Clta(CltaParams params, Baseline baseline);

  Decision observe(double value) override;
  std::size_t observe_all(std::span<const double> values) override;
  void reset() override;
  std::string name() const override;
  const Baseline& baseline() const override { return baseline_; }
  obs::DetectorSnapshot snapshot() const override;
  DetectorState save_state() const override;
  void restore_state(const DetectorState& state) override;

  const CltaParams& params() const noexcept { return params_; }
  /// The fixed decision threshold muX + z * sigmaX / sqrt(n).
  double threshold() const noexcept { return threshold_; }
  std::size_t pending_observations() const noexcept { return window_.pending(); }

 private:
  CltaParams params_;
  Baseline baseline_;
  stats::WindowAverage window_;
  double threshold_;
  double last_average_ = 0.0;  ///< most recent completed window average
};

}  // namespace rejuv::core
