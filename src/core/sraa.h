// SRAA — static rejuvenation algorithm with averaging (paper Fig. 6).
//
// Observations are averaged over disjoint windows of fixed size n; each
// window average x̄u feeds the bucket cascade against the *unscaled* target
// muX + N * sigmaX. Keeping the target unscaled means the algorithm still
// verifies a shift of the RT distribution by K-1 whole standard deviations
// before rejuvenating, regardless of n (section 4.2).
#pragma once

#include <string>

#include "core/bucket_cascade.h"
#include "core/detector.h"
#include "core/registry.h"
#include "stats/quantiles.h"

namespace rejuv::core {

/// Registry descriptor of the "SRAA" family (params n, K, D).
DetectorDescriptor sraa_descriptor();

/// Parameters of SRAA: window size n, bucket count K, bucket depth D.
struct SraaParams {
  std::size_t sample_size = 1;  ///< n
  std::size_t buckets = 1;      ///< K
  int depth = 1;                ///< D
};

class Sraa final : public Detector {
 public:
  Sraa(SraaParams params, Baseline baseline);

  Decision observe(double value) override;
  std::size_t observe_all(std::span<const double> values) override;
  void reset() override;
  std::string name() const override;
  const Baseline& baseline() const override { return baseline_; }
  obs::DetectorSnapshot snapshot() const override;
  DetectorState save_state() const override;
  void restore_state(const DetectorState& state) override;

  const SraaParams& params() const noexcept { return params_; }
  const BucketCascade& cascade() const noexcept { return cascade_; }
  /// Observations accumulated toward the current window.
  std::size_t pending_observations() const noexcept { return window_.pending(); }

 private:
  /// Recomputes the cached bucket target; call after every bucket move.
  void refresh_target() noexcept { target_ = baseline_.bucket_target(cascade_.bucket()); }

  SraaParams params_;
  Baseline baseline_;
  BucketCascade cascade_;
  stats::WindowAverage window_;
  /// Current bucket's target muX + N * sigmaX, cached so the steady-state
  /// window path performs no recomputation; refreshed on bucket transitions.
  double target_ = 0.0;
  double last_average_ = 0.0;  ///< most recent completed window average
};

}  // namespace rejuv::core
