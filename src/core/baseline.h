// Service-level baseline: the "normal behaviour" reference.
//
// Section 4.2 assumes the service level agreement specifies the mean muX and
// standard deviation sigmaX of the metric under normal system behaviour; all
// experiments in section 5 use muX = sigmaX = 5. The estimator below
// implements the paper's future-work direction (section 6): determining the
// baseline from measurements instead of from the SLA.
#pragma once

#include <cstdint>

#include "stats/running_stats.h"

namespace rejuv::core {

/// The (muX, sigmaX) pair all detector targets are built from.
struct Baseline {
  double mean = 0.0;
  double stddev = 0.0;

  /// SRAA target for bucket N: muX + N * sigmaX.
  double bucket_target(std::size_t bucket) const noexcept {
    return mean + static_cast<double>(bucket) * stddev;
  }

  /// SARAA/CLTA target for bucket N and sample size n:
  /// muX + N * sigmaX / sqrt(n).
  double scaled_target(double n_std_devs, std::size_t sample_size) const;
};

/// Throws unless stddev > 0 and both values are finite.
void validate(const Baseline& baseline);

/// Estimates a Baseline from an initial calibration window of observations
/// assumed to be collected under normal behaviour (paper section 6).
class BaselineEstimator {
 public:
  /// `calibration_size`: observations required before the estimate is ready
  /// (at least 2, so a standard deviation exists).
  explicit BaselineEstimator(std::uint64_t calibration_size);

  /// Feeds one observation; returns true once calibrated.
  bool observe(double value);

  bool calibrated() const noexcept { return stats_.count() >= calibration_size_; }

  /// Observations consumed toward the calibration window so far.
  std::uint64_t observed() const noexcept { return stats_.count(); }

  /// The estimated baseline; only valid once calibrated().
  Baseline estimate() const;

  std::uint64_t calibration_size() const noexcept { return calibration_size_; }

  /// The underlying Welford accumulator (checkpoint save).
  const stats::RunningStats& stats() const noexcept { return stats_; }
  /// Replaces the accumulator with a previously saved one (checkpoint
  /// restore); the calibrated() predicate reflects the restored count.
  void restore(const stats::RunningStats& stats) noexcept { stats_ = stats; }

 private:
  std::uint64_t calibration_size_;
  stats::RunningStats stats_;
};

}  // namespace rejuv::core
