// Deterministic, splittable pseudo-random number generation.
//
// Simulation experiments need (a) bit-level reproducibility across platforms,
// (b) independent streams per replication and per stochastic process (arrival
// process vs. service process), and (c) speed. std::mt19937_64 seeded through
// std::seed_seq is reproducible but awkward to split; we instead implement
// SplitMix64 (for seeding / stream derivation) and xoshiro256++ (for the
// bulk stream), the combination recommended by Blackman & Vigna.
#pragma once

#include <array>
#include <cstdint>
#include <limits>

namespace rejuv::common {

/// SplitMix64: a tiny, full-period 64-bit generator. Used to expand a user
/// seed into xoshiro state and to derive independent stream seeds.
class SplitMix64 {
 public:
  explicit SplitMix64(std::uint64_t seed) noexcept : state_(seed) {}

  std::uint64_t next() noexcept {
    std::uint64_t z = (state_ += 0x9e3779b97f4a7c15ULL);
    z = (z ^ (z >> 30)) * 0xbf58476d1ce4e5b9ULL;
    z = (z ^ (z >> 27)) * 0x94d049bb133111ebULL;
    return z ^ (z >> 31);
  }

 private:
  std::uint64_t state_;
};

/// xoshiro256++ 1.0: the general-purpose generator used for all sampling.
/// Satisfies std::uniform_random_bit_generator.
class Xoshiro256pp {
 public:
  using result_type = std::uint64_t;

  /// Seeds the four state words through SplitMix64, as recommended by the
  /// algorithm's authors; guarantees a non-zero state for any seed.
  explicit Xoshiro256pp(std::uint64_t seed) noexcept {
    SplitMix64 sm(seed);
    for (auto& word : state_) word = sm.next();
  }

  static constexpr result_type min() noexcept { return 0; }
  static constexpr result_type max() noexcept {
    return std::numeric_limits<result_type>::max();
  }

  result_type operator()() noexcept {
    const std::uint64_t result = rotl(state_[0] + state_[3], 23) + state_[0];
    const std::uint64_t t = state_[1] << 17;
    state_[2] ^= state_[0];
    state_[3] ^= state_[1];
    state_[1] ^= state_[2];
    state_[0] ^= state_[3];
    state_[2] ^= t;
    state_[3] = rotl(state_[3], 45);
    return result;
  }

  /// Advances the generator 2^128 steps; used to partition one seed into
  /// non-overlapping substreams.
  void jump() noexcept;

 private:
  static constexpr std::uint64_t rotl(std::uint64_t x, int k) noexcept {
    return (x << k) | (x >> (64 - k));
  }

  std::array<std::uint64_t, 4> state_{};
};

/// A named substream of randomness. Streams derived from the same root seed
/// with distinct ids are statistically independent; the derivation is
/// deterministic, so experiment results are reproducible from (seed, id).
class RngStream {
 public:
  using result_type = Xoshiro256pp::result_type;

  /// Derives stream `stream_id` of the family identified by `root_seed`.
  RngStream(std::uint64_t root_seed, std::uint64_t stream_id) noexcept
      : engine_(derive_seed(root_seed, stream_id)) {}

  static constexpr result_type min() noexcept { return Xoshiro256pp::min(); }
  static constexpr result_type max() noexcept { return Xoshiro256pp::max(); }

  result_type operator()() noexcept { return engine_(); }

  /// Uniform double in the half-open interval [0, 1) with 53-bit resolution.
  double uniform01() noexcept {
    return static_cast<double>(engine_() >> 11) * 0x1.0p-53;
  }

  /// Uniform double in the half-open interval (0, 1]; safe as input to
  /// -log(u) without producing infinities.
  double uniform01_open_below() noexcept { return 1.0 - uniform01(); }

 private:
  static std::uint64_t derive_seed(std::uint64_t root_seed, std::uint64_t stream_id) noexcept {
    // Mix the id into the seed through SplitMix64 so that consecutive ids
    // yield unrelated engine states.
    SplitMix64 sm(root_seed ^ (0x9e3779b97f4a7c15ULL * (stream_id + 1)));
    sm.next();
    return sm.next();
  }

  Xoshiro256pp engine_;
};

}  // namespace rejuv::common
