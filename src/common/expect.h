// Lightweight contract checking for the rejuvenation library.
//
// REJUV_EXPECT guards preconditions on public interfaces; violations throw
// std::invalid_argument so that misuse is reported at the call site instead
// of corrupting downstream state. REJUV_ASSERT guards internal invariants
// and throws std::logic_error. Both stay enabled in release builds: every
// check in this codebase sits outside of per-event hot loops or is cheap
// enough that the branch predictor hides it.
#pragma once

#include <stdexcept>
#include <string>

namespace rejuv::common {

[[noreturn]] inline void throw_precondition_failure(const char* expr, const char* file, int line,
                                                    const std::string& message) {
  throw std::invalid_argument(std::string("precondition failed: ") + expr + " at " + file + ":" +
                              std::to_string(line) + (message.empty() ? "" : ": " + message));
}

[[noreturn]] inline void throw_invariant_failure(const char* expr, const char* file, int line,
                                                 const std::string& message) {
  throw std::logic_error(std::string("invariant violated: ") + expr + " at " + file + ":" +
                         std::to_string(line) + (message.empty() ? "" : ": " + message));
}

}  // namespace rejuv::common

#define REJUV_EXPECT(cond, message)                                                      \
  do {                                                                                   \
    if (!(cond)) {                                                                       \
      ::rejuv::common::throw_precondition_failure(#cond, __FILE__, __LINE__, (message)); \
    }                                                                                    \
  } while (false)

#define REJUV_ASSERT(cond, message)                                                   \
  do {                                                                                \
    if (!(cond)) {                                                                    \
      ::rejuv::common::throw_invariant_failure(#cond, __FILE__, __LINE__, (message)); \
    }                                                                                 \
  } while (false)
