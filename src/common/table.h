// Plain-text and CSV table rendering for bench/example output.
//
// Every figure-reproduction binary prints (a) a human-readable aligned table
// and (b) a machine-readable CSV block that downstream plotting can consume.
// This module owns the formatting so the benches stay declarative.
#pragma once

#include <iosfwd>
#include <string>
#include <vector>

namespace rejuv::common {

/// A rectangular table of strings with a header row. Cells are stored
/// row-major; rows are padded to the header width on render.
class Table {
 public:
  explicit Table(std::vector<std::string> header);

  /// Appends one row; must not be wider than the header.
  void add_row(std::vector<std::string> row);

  /// Number of data rows (excluding the header).
  std::size_t row_count() const noexcept { return rows_.size(); }

  /// Renders with space-aligned columns, a separator under the header.
  std::string to_text() const;

  /// Renders as RFC-4180-ish CSV (quotes only where needed).
  std::string to_csv() const;

 private:
  std::vector<std::string> header_;
  std::vector<std::vector<std::string>> rows_;
};

/// Formats a double with `digits` digits after the decimal point.
std::string format_double(double value, int digits);

/// Formats a double in six-significant-digit general format (for CSV).
std::string format_general(double value);

/// Writes both renderings of a table under a titled banner to `os`:
/// the aligned text first, then a `# csv` fenced block.
void print_table(std::ostream& os, const std::string& title, const Table& table);

}  // namespace rejuv::common
