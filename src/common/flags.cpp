#include "common/flags.h"

#include <cstdlib>
#include <stdexcept>

#include "common/expect.h"

namespace rejuv::common {

Flags Flags::parse(int argc, const char* const* argv) {
  Flags flags;
  for (int i = 1; i < argc; ++i) {
    const std::string token = argv[i];
    if (token.rfind("--", 0) != 0 || token.size() <= 2) {
      throw std::invalid_argument("unrecognized argument: " + token + " (expected --key[=value])");
    }
    const auto eq = token.find('=');
    if (eq == std::string::npos) {
      flags.values_[token.substr(2)] = "";
    } else {
      flags.values_[token.substr(2, eq - 2)] = token.substr(eq + 1);
    }
  }
  return flags;
}

bool Flags::has(const std::string& key) const { return values_.count(key) != 0; }

std::optional<std::string> Flags::get(const std::string& key) const {
  const auto it = values_.find(key);
  if (it == values_.end()) return std::nullopt;
  return it->second;
}

std::int64_t Flags::get_int(const std::string& key, std::int64_t fallback) const {
  const auto value = get(key);
  if (!value) return fallback;
  return std::stoll(*value);
}

double Flags::get_double(const std::string& key, double fallback) const {
  const auto value = get(key);
  if (!value) return fallback;
  return std::stod(*value);
}

std::vector<double> Flags::get_double_list(const std::string& key,
                                           std::vector<double> fallback) const {
  const auto value = get(key);
  if (!value) return fallback;
  std::vector<double> out;
  std::size_t start = 0;
  while (start <= value->size()) {
    const auto comma = value->find(',', start);
    const auto end = comma == std::string::npos ? value->size() : comma;
    if (end > start) out.push_back(std::stod(value->substr(start, end - start)));
    if (comma == std::string::npos) break;
    start = comma + 1;
  }
  REJUV_EXPECT(!out.empty(), "empty list for --" + key);
  return out;
}

bool env_enabled(const char* name) {
  const char* raw = std::getenv(name);
  if (raw == nullptr) return false;
  const std::string value = raw;
  return !value.empty() && value != "0" && value != "false";
}

std::int64_t env_int(const char* name, std::int64_t fallback) {
  const char* raw = std::getenv(name);
  if (raw == nullptr || *raw == '\0') return fallback;
  return std::stoll(raw);
}

}  // namespace rejuv::common
