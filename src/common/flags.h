// Minimal command-line flag and environment parsing for bench binaries.
//
// All figure benches accept `--key=value` overrides (sample budget, seeds,
// load grid) and honour the REJUV_FULL environment switch that restores the
// paper's full 5x100,000-transaction protocol. A full argparse library would
// be overkill; this covers exactly what the binaries need.
#pragma once

#include <cstdint>
#include <map>
#include <optional>
#include <string>
#include <vector>

namespace rejuv::common {

/// Parsed `--key=value` / `--switch` command-line flags.
class Flags {
 public:
  /// Parses argv; throws std::invalid_argument on a token that is not of the
  /// form `--key` or `--key=value`.
  static Flags parse(int argc, const char* const* argv);

  bool has(const std::string& key) const;
  std::optional<std::string> get(const std::string& key) const;
  std::int64_t get_int(const std::string& key, std::int64_t fallback) const;
  double get_double(const std::string& key, double fallback) const;

  /// Comma-separated list of doubles, e.g. `--loads=0.5,1,2`.
  std::vector<double> get_double_list(const std::string& key,
                                      std::vector<double> fallback) const;

 private:
  std::map<std::string, std::string> values_;
};

/// True when environment variable `name` is set to a non-empty value other
/// than "0" or "false".
bool env_enabled(const char* name);

/// Integer environment override with fallback.
std::int64_t env_int(const char* name, std::int64_t fallback);

}  // namespace rejuv::common
