#include "common/table.h"

#include <algorithm>
#include <cstdio>
#include <ostream>
#include <sstream>

#include "common/expect.h"

namespace rejuv::common {

Table::Table(std::vector<std::string> header) : header_(std::move(header)) {
  REJUV_EXPECT(!header_.empty(), "table needs at least one column");
}

void Table::add_row(std::vector<std::string> row) {
  REJUV_EXPECT(row.size() <= header_.size(), "row wider than header");
  row.resize(header_.size());
  rows_.push_back(std::move(row));
}

namespace {

std::vector<std::size_t> column_widths(const std::vector<std::string>& header,
                                       const std::vector<std::vector<std::string>>& rows) {
  std::vector<std::size_t> widths(header.size());
  for (std::size_t c = 0; c < header.size(); ++c) widths[c] = header[c].size();
  for (const auto& row : rows) {
    for (std::size_t c = 0; c < row.size(); ++c) widths[c] = std::max(widths[c], row[c].size());
  }
  return widths;
}

void append_aligned_row(std::string& out, const std::vector<std::string>& cells,
                        const std::vector<std::size_t>& widths) {
  for (std::size_t c = 0; c < cells.size(); ++c) {
    if (c != 0) out += "  ";
    out += cells[c];
    out.append(widths[c] - cells[c].size(), ' ');
  }
  while (!out.empty() && out.back() == ' ') out.pop_back();
  out += '\n';
}

std::string csv_escape(const std::string& cell) {
  if (cell.find_first_of(",\"\n") == std::string::npos) return cell;
  std::string out = "\"";
  for (char ch : cell) {
    if (ch == '"') out += '"';
    out += ch;
  }
  out += '"';
  return out;
}

}  // namespace

std::string Table::to_text() const {
  const auto widths = column_widths(header_, rows_);
  std::string out;
  append_aligned_row(out, header_, widths);
  std::size_t total = 0;
  for (std::size_t w : widths) total += w + 2;
  out.append(total >= 2 ? total - 2 : total, '-');
  out += '\n';
  for (const auto& row : rows_) append_aligned_row(out, row, widths);
  return out;
}

std::string Table::to_csv() const {
  std::string out;
  auto append_csv_row = [&out](const std::vector<std::string>& cells) {
    for (std::size_t c = 0; c < cells.size(); ++c) {
      if (c != 0) out += ',';
      out += csv_escape(cells[c]);
    }
    out += '\n';
  };
  append_csv_row(header_);
  for (const auto& row : rows_) append_csv_row(row);
  return out;
}

std::string format_double(double value, int digits) {
  REJUV_EXPECT(digits >= 0 && digits <= 17, "unsupported digit count");
  char buffer[64];
  std::snprintf(buffer, sizeof buffer, "%.*f", digits, value);
  return buffer;
}

std::string format_general(double value) {
  char buffer[64];
  std::snprintf(buffer, sizeof buffer, "%.6g", value);
  return buffer;
}

void print_table(std::ostream& os, const std::string& title, const Table& table) {
  os << "== " << title << " ==\n" << table.to_text() << "\n# csv\n" << table.to_csv() << "# end csv\n\n";
}

}  // namespace rejuv::common
