#include "common/rng.h"

namespace rejuv::common {

void Xoshiro256pp::jump() noexcept {
  static constexpr std::uint64_t kJump[] = {0x180ec6d33cfd0abaULL, 0xd5a61266f0c9392cULL,
                                            0xa9582618e03fc9aaULL, 0x39abdc4529b1661cULL};
  std::uint64_t s0 = 0, s1 = 0, s2 = 0, s3 = 0;
  for (std::uint64_t word : kJump) {
    for (int bit = 0; bit < 64; ++bit) {
      if (word & (1ULL << bit)) {
        s0 ^= state_[0];
        s1 ^= state_[1];
        s2 ^= state_[2];
        s3 ^= state_[3];
      }
      (*this)();
    }
  }
  state_ = {s0, s1, s2, s3};
}

}  // namespace rejuv::common
