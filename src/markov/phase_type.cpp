#include "markov/phase_type.h"

#include <cmath>

#include "common/expect.h"

namespace rejuv::markov {

PhaseType::PhaseType(std::vector<double> alpha, Matrix subgenerator)
    : alpha_(std::move(alpha)), s_(std::move(subgenerator)) {
  REJUV_EXPECT(s_.rows() == s_.cols(), "subgenerator must be square");
  REJUV_EXPECT(alpha_.size() == s_.rows(), "alpha size must match subgenerator order");
  double alpha_total = 0.0;
  for (double a : alpha_) {
    REJUV_EXPECT(a >= 0.0, "alpha entries must be non-negative");
    alpha_total += a;
  }
  REJUV_EXPECT(alpha_total <= 1.0 + 1e-12, "alpha must sum to at most 1");

  exit_rates_.resize(order(), 0.0);
  for (std::size_t i = 0; i < order(); ++i) {
    double row_sum = 0.0;
    for (std::size_t j = 0; j < order(); ++j) {
      const double entry = s_.at(i, j);
      if (i == j) {
        REJUV_EXPECT(entry <= 0.0, "subgenerator diagonal must be non-positive");
      } else {
        REJUV_EXPECT(entry >= 0.0, "subgenerator off-diagonal must be non-negative");
      }
      row_sum += entry;
    }
    REJUV_EXPECT(row_sum <= 1e-9, "subgenerator row sums must be non-positive");
    exit_rates_[i] = row_sum < 0.0 ? -row_sum : 0.0;
  }
}

double PhaseType::exit_rate(std::size_t i) const {
  REJUV_EXPECT(i < order(), "state out of range");
  return exit_rates_[i];
}

double PhaseType::moment(std::size_t k) const {
  REJUV_EXPECT(k >= 1, "moment order must be at least 1");
  // v_0 = 1; v_j = (-S)^{-1} v_{j-1}; E[X^k] = k! alpha . v_k.
  Matrix neg_s(order(), order());
  for (std::size_t i = 0; i < order(); ++i) {
    for (std::size_t j = 0; j < order(); ++j) neg_s.at(i, j) = -s_.at(i, j);
  }
  std::vector<double> v(order(), 1.0);
  double factorial = 1.0;
  for (std::size_t j = 1; j <= k; ++j) {
    v = solve(neg_s, std::move(v));
    factorial *= static_cast<double>(j);
  }
  return factorial * dot(alpha_, v);
}

double PhaseType::variance() const {
  const double m1 = moment(1);
  return moment(2) - m1 * m1;
}

double PhaseType::stddev() const { return std::sqrt(variance()); }

double PhaseType::pdf(double t, double epsilon) const {
  REJUV_EXPECT(t >= 0.0, "time must be non-negative");
  std::vector<double> initial(order() + 1, 0.0);
  double alpha_total = 0.0;
  for (std::size_t i = 0; i < order(); ++i) {
    initial[i] = alpha_[i];
    alpha_total += alpha_[i];
  }
  initial[order()] = 1.0 - alpha_total;  // atom at zero sits in absorption
  return to_ctmc().absorption_pdf(initial, t, epsilon);
}

double PhaseType::cdf(double t, double epsilon) const {
  REJUV_EXPECT(t >= 0.0, "time must be non-negative");
  std::vector<double> initial(order() + 1, 0.0);
  double alpha_total = 0.0;
  for (std::size_t i = 0; i < order(); ++i) {
    initial[i] = alpha_[i];
    alpha_total += alpha_[i];
  }
  initial[order()] = 1.0 - alpha_total;
  return to_ctmc().absorption_cdf(initial, t, epsilon);
}

PhaseType PhaseType::scaled(double factor) const {
  REJUV_EXPECT(factor > 0.0 && std::isfinite(factor), "scale factor must be positive and finite");
  Matrix scaled_s(order(), order());
  for (std::size_t i = 0; i < order(); ++i) {
    for (std::size_t j = 0; j < order(); ++j) scaled_s.at(i, j) = s_.at(i, j) / factor;
  }
  return PhaseType(alpha_, std::move(scaled_s));
}

PhaseType PhaseType::convolution(const PhaseType& x, const PhaseType& y) {
  const std::size_t nx = x.order();
  const std::size_t ny = y.order();
  Matrix s(nx + ny, nx + ny);
  for (std::size_t i = 0; i < nx; ++i) {
    for (std::size_t j = 0; j < nx; ++j) s.at(i, j) = x.s_.at(i, j);
    // Absorption of X routes into Y's initial distribution.
    for (std::size_t j = 0; j < ny; ++j) s.at(i, nx + j) = x.exit_rates_[i] * y.alpha_[j];
  }
  for (std::size_t i = 0; i < ny; ++i) {
    for (std::size_t j = 0; j < ny; ++j) s.at(nx + i, nx + j) = y.s_.at(i, j);
  }

  double x_alpha_total = 0.0;
  for (double a : x.alpha_) x_alpha_total += a;
  std::vector<double> alpha(nx + ny, 0.0);
  for (std::size_t i = 0; i < nx; ++i) alpha[i] = x.alpha_[i];
  for (std::size_t j = 0; j < ny; ++j) alpha[nx + j] = (1.0 - x_alpha_total) * y.alpha_[j];
  return PhaseType(std::move(alpha), std::move(s));
}

PhaseType PhaseType::convolution_power(const PhaseType& x, std::size_t n) {
  REJUV_EXPECT(n >= 1, "convolution power must be at least 1");
  PhaseType acc = x;
  for (std::size_t i = 1; i < n; ++i) acc = convolution(acc, x);
  return acc;
}

PhaseType PhaseType::sample_average(const PhaseType& x, std::size_t n) {
  REJUV_EXPECT(n >= 1, "sample size must be at least 1");
  return convolution_power(x.scaled(1.0 / static_cast<double>(n)), n);
}

PhaseType PhaseType::exponential(double rate) {
  REJUV_EXPECT(rate > 0.0, "rate must be positive");
  Matrix s(1, 1);
  s.at(0, 0) = -rate;
  return PhaseType({1.0}, std::move(s));
}

PhaseType PhaseType::erlang(std::size_t stages, double rate) {
  REJUV_EXPECT(stages >= 1, "Erlang needs at least one stage");
  REJUV_EXPECT(rate > 0.0, "rate must be positive");
  Matrix s(stages, stages);
  for (std::size_t i = 0; i < stages; ++i) {
    s.at(i, i) = -rate;
    if (i + 1 < stages) s.at(i, i + 1) = rate;
  }
  std::vector<double> alpha(stages, 0.0);
  alpha[0] = 1.0;
  return PhaseType(std::move(alpha), std::move(s));
}

PhaseType PhaseType::hypoexponential(const std::vector<double>& rates) {
  REJUV_EXPECT(!rates.empty(), "hypoexponential needs at least one stage");
  const std::size_t n = rates.size();
  Matrix s(n, n);
  for (std::size_t i = 0; i < n; ++i) {
    REJUV_EXPECT(rates[i] > 0.0, "rates must be positive");
    s.at(i, i) = -rates[i];
    if (i + 1 < n) s.at(i, i + 1) = rates[i];
  }
  std::vector<double> alpha(n, 0.0);
  alpha[0] = 1.0;
  return PhaseType(std::move(alpha), std::move(s));
}

Ctmc PhaseType::to_ctmc() const {
  Ctmc chain(order() + 1);
  const std::size_t absorbing = order();
  for (std::size_t i = 0; i < order(); ++i) {
    for (std::size_t j = 0; j < order(); ++j) {
      if (i != j && s_.at(i, j) > 0.0) chain.add_transition(i, j, s_.at(i, j));
    }
    if (exit_rates_[i] > 0.0) chain.add_transition(i, absorbing, exit_rates_[i]);
  }
  return chain;
}

}  // namespace rejuv::markov
