#include "markov/stationary.h"

#include <algorithm>
#include <cmath>

#include "common/expect.h"
#include "markov/linalg.h"

namespace rejuv::markov {

std::vector<double> stationary_distribution(const Ctmc& chain) {
  const std::size_t n = chain.state_count();
  for (std::size_t s = 0; s < n; ++s) {
    REJUV_EXPECT(!chain.is_absorbing(s) || n == 1,
                 "stationary distribution of a chain with absorbing states");
  }
  if (n == 1) return {1.0};

  // Assemble Q^T, then replace the last equation by the normalization row.
  Matrix system(n, n);
  for (const Transition& t : chain.transitions()) {
    system.at(t.to, t.from) += t.rate;
    system.at(t.from, t.from) -= t.rate;
  }
  std::vector<double> rhs(n, 0.0);
  for (std::size_t col = 0; col < n; ++col) system.at(n - 1, col) = 1.0;
  rhs[n - 1] = 1.0;

  std::vector<double> pi = solve(std::move(system), std::move(rhs));
  // Clamp tiny negative round-off and renormalize.
  double total = 0.0;
  for (double& p : pi) {
    p = std::max(p, 0.0);
    total += p;
  }
  REJUV_ASSERT(total > 0.0, "stationary solve produced a zero vector");
  for (double& p : pi) p /= total;
  return pi;
}

Ctmc build_mmc_birth_death_chain(double lambda, double mu, std::size_t servers,
                                 std::size_t max_jobs) {
  REJUV_EXPECT(lambda > 0.0, "arrival rate must be positive");
  REJUV_EXPECT(mu > 0.0, "service rate must be positive");
  REJUV_EXPECT(servers >= 1, "need at least one server");
  REJUV_EXPECT(max_jobs >= servers, "truncation must cover all servers");
  Ctmc chain(max_jobs + 1);
  for (std::size_t k = 0; k < max_jobs; ++k) {
    chain.add_transition(k, k + 1, lambda);
  }
  for (std::size_t k = 1; k <= max_jobs; ++k) {
    chain.add_transition(k, k - 1, static_cast<double>(std::min(k, servers)) * mu);
  }
  return chain;
}

}  // namespace rejuv::markov
