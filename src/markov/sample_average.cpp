#include "markov/sample_average.h"

#include <cmath>

#include "common/expect.h"
#include "stats/normal.h"

namespace rejuv::markov {

PhaseType response_time_phase_type(const ResponseTimeChainParams& params) {
  REJUV_EXPECT(params.wc >= 0.0 && params.wc <= 1.0, "Wc must be a probability");
  REJUV_EXPECT(params.service_rate > 0.0, "service rate must be positive");
  REJUV_EXPECT(params.drain_rate > 0.0, "drain rate must be positive (stable system)");
  // State 0: in service (exit rate mu, split Wc to absorption / 1-Wc onward);
  // state 1: the queueing stage of rate c*mu - lambda.
  Matrix s(2, 2);
  s.at(0, 0) = -params.service_rate;
  s.at(0, 1) = params.service_rate * (1.0 - params.wc);
  s.at(1, 1) = -params.drain_rate;
  return PhaseType({1.0, 0.0}, std::move(s));
}

PhaseType sample_average_phase_type(const ResponseTimeChainParams& params, std::size_t n) {
  return PhaseType::sample_average(response_time_phase_type(params), n);
}

SampleAverageDistribution::SampleAverageDistribution(const ResponseTimeChainParams& params,
                                                     std::size_t n)
    : n_(n),
      average_(sample_average_phase_type(params, n)),
      mean_single_(0.0),
      stddev_single_(0.0) {
  const PhaseType single = response_time_phase_type(params);
  mean_single_ = single.mean();
  stddev_single_ = single.stddev();
}

double SampleAverageDistribution::pdf(double x) const { return average_.pdf(x); }

double SampleAverageDistribution::cdf(double x) const { return average_.cdf(x); }

double SampleAverageDistribution::stddev() const noexcept {
  return stddev_single_ / std::sqrt(static_cast<double>(n_));
}

double SampleAverageDistribution::normal_approximation_pdf(double x) const {
  return stats::normal_pdf(x, mean(), stddev());
}

double SampleAverageDistribution::false_alarm_probability(double z) const {
  REJUV_EXPECT(z > 0.0, "quantile factor must be positive");
  const double threshold = mean() + z * stddev();
  return 1.0 - cdf(threshold);
}

}  // namespace rejuv::markov
