#include "markov/linalg.h"

#include <cmath>
#include <stdexcept>

#include "common/expect.h"

namespace rejuv::markov {

Matrix::Matrix(std::size_t rows, std::size_t cols)
    : rows_(rows), cols_(cols), data_(rows * cols, 0.0) {
  REJUV_EXPECT(rows > 0 && cols > 0, "matrix dimensions must be positive");
}

double& Matrix::at(std::size_t r, std::size_t c) {
  REJUV_EXPECT(r < rows_ && c < cols_, "matrix index out of range");
  return data_[r * cols_ + c];
}

double Matrix::at(std::size_t r, std::size_t c) const {
  REJUV_EXPECT(r < rows_ && c < cols_, "matrix index out of range");
  return data_[r * cols_ + c];
}

Matrix Matrix::identity(std::size_t n) {
  Matrix m(n, n);
  for (std::size_t i = 0; i < n; ++i) m.at(i, i) = 1.0;
  return m;
}

Matrix Matrix::operator*(const Matrix& rhs) const {
  REJUV_EXPECT(cols_ == rhs.rows_, "matrix product dimension mismatch");
  Matrix out(rows_, rhs.cols_);
  for (std::size_t i = 0; i < rows_; ++i) {
    for (std::size_t k = 0; k < cols_; ++k) {
      const double v = at(i, k);
      if (v == 0.0) continue;
      for (std::size_t j = 0; j < rhs.cols_; ++j) out.at(i, j) += v * rhs.at(k, j);
    }
  }
  return out;
}

std::vector<double> Matrix::operator*(std::span<const double> vec) const {
  REJUV_EXPECT(vec.size() == cols_, "matrix-vector dimension mismatch");
  std::vector<double> out(rows_, 0.0);
  for (std::size_t i = 0; i < rows_; ++i) {
    double acc = 0.0;
    for (std::size_t j = 0; j < cols_; ++j) acc += at(i, j) * vec[j];
    out[i] = acc;
  }
  return out;
}

std::vector<double> solve(Matrix a, std::vector<double> b) {
  REJUV_EXPECT(a.rows() == a.cols(), "solve requires a square matrix");
  REJUV_EXPECT(b.size() == a.rows(), "right-hand side dimension mismatch");
  const std::size_t n = a.rows();
  std::vector<std::size_t> perm(n);
  for (std::size_t i = 0; i < n; ++i) perm[i] = i;

  for (std::size_t col = 0; col < n; ++col) {
    std::size_t pivot = col;
    double best = std::abs(a.at(col, col));
    for (std::size_t r = col + 1; r < n; ++r) {
      const double mag = std::abs(a.at(r, col));
      if (mag > best) {
        best = mag;
        pivot = r;
      }
    }
    if (best < 1e-300) throw std::invalid_argument("solve: matrix is singular");
    if (pivot != col) {
      for (std::size_t j = 0; j < n; ++j) std::swap(a.at(col, j), a.at(pivot, j));
      std::swap(b[col], b[pivot]);
    }
    for (std::size_t r = col + 1; r < n; ++r) {
      const double factor = a.at(r, col) / a.at(col, col);
      if (factor == 0.0) continue;
      a.at(r, col) = 0.0;
      for (std::size_t j = col + 1; j < n; ++j) a.at(r, j) -= factor * a.at(col, j);
      b[r] -= factor * b[col];
    }
  }

  std::vector<double> x(n, 0.0);
  for (std::size_t ri = n; ri-- > 0;) {
    double acc = b[ri];
    for (std::size_t j = ri + 1; j < n; ++j) acc -= a.at(ri, j) * x[j];
    x[ri] = acc / a.at(ri, ri);
  }
  return x;
}

std::vector<double> row_times_matrix(std::span<const double> v, const Matrix& a) {
  REJUV_EXPECT(v.size() == a.rows(), "row-vector dimension mismatch");
  std::vector<double> out(a.cols(), 0.0);
  for (std::size_t i = 0; i < a.rows(); ++i) {
    if (v[i] == 0.0) continue;
    for (std::size_t j = 0; j < a.cols(); ++j) out[j] += v[i] * a.at(i, j);
  }
  return out;
}

double dot(std::span<const double> a, std::span<const double> b) {
  REJUV_EXPECT(a.size() == b.size(), "dot product dimension mismatch");
  double acc = 0.0;
  for (std::size_t i = 0; i < a.size(); ++i) acc += a[i] * b[i];
  return acc;
}

}  // namespace rejuv::markov
