// Small dense linear algebra for phase-type moment computations.
//
// Phase-type moments require solving (-S) x = b for the subgenerator S.
// The matrices involved are tiny (2n+O(1) states, n <= a few hundred), so a
// straightforward dense LU with partial pivoting is both adequate and easy
// to audit. Not intended for large systems — the transient CTMC path uses
// sparse uniformization instead.
#pragma once

#include <cstddef>
#include <span>
#include <vector>

namespace rejuv::markov {

/// Dense row-major matrix with value semantics.
class Matrix {
 public:
  Matrix(std::size_t rows, std::size_t cols);

  std::size_t rows() const noexcept { return rows_; }
  std::size_t cols() const noexcept { return cols_; }

  double& at(std::size_t r, std::size_t c);
  double at(std::size_t r, std::size_t c) const;

  static Matrix identity(std::size_t n);

  Matrix operator*(const Matrix& rhs) const;
  std::vector<double> operator*(std::span<const double> vec) const;

 private:
  std::size_t rows_;
  std::size_t cols_;
  std::vector<double> data_;
};

/// Solves A x = b by LU with partial pivoting; throws std::invalid_argument
/// if A is singular to working precision.
std::vector<double> solve(Matrix a, std::vector<double> b);

/// Left-multiplies a row vector: returns v^T A as a vector.
std::vector<double> row_times_matrix(std::span<const double> v, const Matrix& a);

/// Dot product.
double dot(std::span<const double> a, std::span<const double> b);

}  // namespace rejuv::markov
