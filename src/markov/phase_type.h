// Phase-type distributions: absorption times of finite CTMCs.
//
// The paper represents the M/M/c response time as a phase-type distribution
// (Fig. 2/3) and obtains the distribution of the sample average X̄n by
// concatenating n rate-scaled copies of that chain (Fig. 4). PhaseType
// provides exactly this algebra: closure under positive scaling and
// convolution, exact moments through linear solves, and density/CDF
// evaluation through the uniformization engine.
#pragma once

#include <cstddef>
#include <vector>

#include "markov/ctmc.h"
#include "markov/linalg.h"

namespace rejuv::markov {

/// Distribution of the time to absorption in a CTMC with `order()` transient
/// states, initial distribution alpha (over transient states; any deficit
/// 1 - sum(alpha) is an atom at zero) and subgenerator S. Exit rates to the
/// absorbing state are the negated row sums of S.
class PhaseType {
 public:
  /// `alpha.size()` must equal `subgenerator.rows()`; S must have
  /// non-negative off-diagonal entries and non-positive row sums.
  PhaseType(std::vector<double> alpha, Matrix subgenerator);

  std::size_t order() const noexcept { return alpha_.size(); }
  const std::vector<double>& alpha() const noexcept { return alpha_; }
  const Matrix& subgenerator() const noexcept { return s_; }

  /// Exit rate from transient state i into absorption.
  double exit_rate(std::size_t i) const;

  /// k-th raw moment, E[X^k] = k! * alpha * (-S)^{-k} * 1.
  double moment(std::size_t k) const;
  double mean() const { return moment(1); }
  double variance() const;
  double stddev() const;

  /// Density and CDF at t >= 0, via uniformization with tolerance epsilon.
  double pdf(double t, double epsilon = 1e-12) const;
  double cdf(double t, double epsilon = 1e-12) const;

  /// Distribution of `factor * X` (factor > 0): scales the subgenerator by
  /// 1/factor. Used to form X/n before concatenation.
  PhaseType scaled(double factor) const;

  /// Distribution of X + Y for independent phase-type X, Y: the sequential
  /// composition that fuses Y's start onto X's absorption (paper Fig. 4).
  static PhaseType convolution(const PhaseType& x, const PhaseType& y);

  /// Distribution of the sum of n independent copies of X.
  static PhaseType convolution_power(const PhaseType& x, std::size_t n);

  /// Distribution of the average of n independent copies of X — the paper's
  /// X̄n construction: scale each copy by 1/n (multiply rates by n), then
  /// concatenate n of them.
  static PhaseType sample_average(const PhaseType& x, std::size_t n);

  /// Common special cases.
  static PhaseType exponential(double rate);
  static PhaseType erlang(std::size_t stages, double rate);
  static PhaseType hypoexponential(const std::vector<double>& rates);

  /// Explicit CTMC with one extra absorbing state (index order()).
  Ctmc to_ctmc() const;

 private:
  std::vector<double> alpha_;
  Matrix s_;
  std::vector<double> exit_rates_;
};

}  // namespace rejuv::markov
