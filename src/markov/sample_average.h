// The paper's Fig. 3 / Fig. 4 constructions and the false-alarm analysis.
//
// Fig. 3: the M/M/c response time X as the absorption time of a 3-state
// CTMC — from state 1, rate mu*Wc leads straight to absorption (no queueing
// delay) and rate mu*(1-Wc) leads to a second stage of rate (c*mu - lambda).
// Fig. 4: X̄n as absorption in the concatenation of n copies of that chain
// with all rates multiplied by n. Section 4.1 then computes the probability
// mass that the exact density of X̄n places beyond normal-approximation
// quantiles (3.69% for n=15, 3.37% for n=30 at the 97.5% point).
#pragma once

#include <cstddef>

#include "markov/phase_type.h"

namespace rejuv::markov {

/// Parameters of the Fig. 3 response-time chain. `wc` is the steady-state
/// probability that fewer than c jobs are present; `service_rate` is mu;
/// `drain_rate` is c*mu - lambda, the second-stage rate.
struct ResponseTimeChainParams {
  double wc;
  double service_rate;
  double drain_rate;
};

/// Builds the phase-type distribution of the response time X (Fig. 2/3).
PhaseType response_time_phase_type(const ResponseTimeChainParams& params);

/// Builds the phase-type distribution of X̄n (Fig. 4): n concatenated copies
/// with rates multiplied by n, 2n transient states plus absorption.
PhaseType sample_average_phase_type(const ResponseTimeChainParams& params, std::size_t n);

/// Exact distribution of the sample average of the response time, with the
/// quantities section 4.1 reports about it.
class SampleAverageDistribution {
 public:
  SampleAverageDistribution(const ResponseTimeChainParams& params, std::size_t n);

  std::size_t sample_size() const noexcept { return n_; }

  /// Exact density f_X̄n(x) of eq. (4).
  double pdf(double x) const;
  /// Exact CDF F_X̄n(x).
  double cdf(double x) const;

  /// Moments of the single response time X (match eq. (2)/(3)).
  double mean_single() const noexcept { return mean_single_; }
  double stddev_single() const noexcept { return stddev_single_; }

  /// Moments of X̄n: same mean, stddev shrunk by sqrt(n).
  double mean() const noexcept { return mean_single_; }
  double stddev() const noexcept;

  /// Density of the approximating normal N(mean(), stddev()^2) at x.
  double normal_approximation_pdf(double x) const;

  /// Exact tail mass beyond the normal-approximation threshold
  /// mean + z * stddev(): P(X̄n > mu_X + z * sigma_X / sqrt(n)).
  /// For z = 1.96 this reproduces the 3.69% / 3.37% figures of section 4.1.
  double false_alarm_probability(double z) const;

  const PhaseType& distribution() const noexcept { return average_; }

 private:
  std::size_t n_;
  PhaseType average_;
  double mean_single_;
  double stddev_single_;
};

}  // namespace rejuv::markov
