// Continuous-time Markov chains and transient analysis by uniformization.
//
// The paper derives the exact distribution of the average response time X̄n
// as the time to absorption in the CTMC of Fig. 4, solved with the SHARPE
// tool. This module is our SHARPE replacement: a sparse CTMC representation
// plus Jensen's uniformization method for the transient state probabilities
// p_i(t), with adaptive truncation of the Poisson series to a caller-chosen
// tolerance.
#pragma once

#include <cstddef>
#include <span>
#include <vector>

namespace rejuv::markov {

/// One directed transition of a CTMC.
struct Transition {
  std::size_t from;
  std::size_t to;
  double rate;
};

/// Sparse CTMC over states 0..n-1. Absorbing states are simply states with
/// no outgoing transitions.
class Ctmc {
 public:
  explicit Ctmc(std::size_t state_count);

  /// Adds `rate` to the transition from -> to. Self-loops are rejected
  /// (they are meaningless in a CTMC generator).
  void add_transition(std::size_t from, std::size_t to, double rate);

  std::size_t state_count() const noexcept { return state_count_; }
  std::span<const Transition> transitions() const noexcept { return transitions_; }

  /// Total outgoing rate of a state; 0 for absorbing states.
  double exit_rate(std::size_t state) const;

  bool is_absorbing(std::size_t state) const { return exit_rate(state) == 0.0; }

  /// Transient state probabilities p(t) from an initial distribution, via
  /// uniformization. `epsilon` bounds the truncation error of the Poisson
  /// series (total variation). Cost O(k * |transitions|) with
  /// k ~ rate*t + O(sqrt(rate*t)).
  std::vector<double> transient_probabilities(std::span<const double> initial, double t,
                                              double epsilon = 1e-12) const;

  /// Probability that the chain started from `initial` is in an absorbing
  /// state at time t — i.e., the CDF of the absorption time.
  double absorption_cdf(std::span<const double> initial, double t, double epsilon = 1e-12) const;

  /// Density of the absorption time at t: the probability flux into
  /// absorbing states, sum over transitions (i -> a, a absorbing) of
  /// p_i(t) * rate. This is exactly eq. (4) of the paper for the Fig. 4
  /// chain.
  double absorption_pdf(std::span<const double> initial, double t, double epsilon = 1e-12) const;

 private:
  void check_initial(std::span<const double> initial) const;

  std::size_t state_count_;
  std::vector<Transition> transitions_;
  std::vector<double> exit_rates_;
};

}  // namespace rejuv::markov
