// Stationary distributions of finite CTMCs.
//
// Fig. 1 of the paper is the birth-death chain of the M/M/c queue; its
// stationary distribution is what the Wc formula summarizes. This module
// solves pi * Q = 0, sum(pi) = 1 for any finite irreducible CTMC, which lets
// the tests validate the Erlang-based Wc against a direct numerical solution
// of the Fig. 1 chain (truncated at a large population), and provides the
// phase probabilities used by the MMPP workload model.
#pragma once

#include <cstddef>
#include <vector>

#include "markov/ctmc.h"

namespace rejuv::markov {

/// Stationary distribution of an irreducible CTMC: solves pi Q = 0 with the
/// normalization sum(pi) = 1 by dense LU on the transposed generator.
/// Throws std::invalid_argument if the chain has absorbing states (no
/// stationary distribution in the intended sense) or the solve fails.
std::vector<double> stationary_distribution(const Ctmc& chain);

/// Builds the Fig. 1 birth-death chain of an M/M/c queue truncated at
/// `max_jobs` jobs in the system: state k has arrival rate lambda (k <
/// max_jobs) and service rate min(k, c) * mu.
Ctmc build_mmc_birth_death_chain(double lambda, double mu, std::size_t servers,
                                 std::size_t max_jobs);

}  // namespace rejuv::markov
