#include "markov/ctmc.h"

#include <algorithm>
#include <cmath>

#include "common/expect.h"

namespace rejuv::markov {

Ctmc::Ctmc(std::size_t state_count) : state_count_(state_count), exit_rates_(state_count, 0.0) {
  REJUV_EXPECT(state_count > 0, "CTMC needs at least one state");
}

void Ctmc::add_transition(std::size_t from, std::size_t to, double rate) {
  REJUV_EXPECT(from < state_count_ && to < state_count_, "transition endpoint out of range");
  REJUV_EXPECT(from != to, "self-loop in a CTMC generator");
  REJUV_EXPECT(rate > 0.0 && std::isfinite(rate), "transition rate must be positive and finite");
  transitions_.push_back({from, to, rate});
  exit_rates_[from] += rate;
}

double Ctmc::exit_rate(std::size_t state) const {
  REJUV_EXPECT(state < state_count_, "state out of range");
  return exit_rates_[state];
}

void Ctmc::check_initial(std::span<const double> initial) const {
  REJUV_EXPECT(initial.size() == state_count_, "initial distribution size mismatch");
  double total = 0.0;
  for (double p : initial) {
    REJUV_EXPECT(p >= -1e-12, "negative initial probability");
    total += p;
  }
  REJUV_EXPECT(std::abs(total - 1.0) < 1e-9, "initial distribution must sum to 1");
}

std::vector<double> Ctmc::transient_probabilities(std::span<const double> initial, double t,
                                                  double epsilon) const {
  check_initial(initial);
  REJUV_EXPECT(t >= 0.0 && std::isfinite(t), "time must be non-negative and finite");
  REJUV_EXPECT(epsilon > 0.0 && epsilon < 1.0, "epsilon must lie in (0, 1)");

  std::vector<double> pi(initial.begin(), initial.end());
  const double uniform_rate = *std::max_element(exit_rates_.begin(), exit_rates_.end());
  if (uniform_rate == 0.0 || t == 0.0) return pi;  // all states absorbing, or no time elapsed

  const double lt = uniform_rate * t;
  // Conservative truncation point: mean + 10 standard deviations + margin
  // covers a total-variation tail far below any epsilon >= 1e-15; the loop
  // below additionally stops as soon as the accumulated Poisson mass reaches
  // 1 - epsilon.
  const auto k_max =
      static_cast<std::size_t>(std::ceil(lt + 10.0 * std::sqrt(lt + 1.0) + 40.0));

  std::vector<double> result(state_count_, 0.0);
  std::vector<double> next(state_count_, 0.0);

  // Poisson(k; lt) weights computed in log space to survive large lt.
  const double log_lt = std::log(lt);
  double accumulated = 0.0;
  for (std::size_t k = 0; k <= k_max; ++k) {
    const double log_weight =
        -lt + static_cast<double>(k) * log_lt - std::lgamma(static_cast<double>(k) + 1.0);
    const double weight = std::exp(log_weight);
    if (weight > 0.0) {
      for (std::size_t s = 0; s < state_count_; ++s) result[s] += weight * pi[s];
      accumulated += weight;
    }
    if (accumulated >= 1.0 - epsilon) break;
    // pi <- pi * P where P = I + Q/uniform_rate.
    for (std::size_t s = 0; s < state_count_; ++s) {
      next[s] = pi[s] * (1.0 - exit_rates_[s] / uniform_rate);
    }
    for (const Transition& tr : transitions_) {
      next[tr.to] += pi[tr.from] * (tr.rate / uniform_rate);
    }
    pi.swap(next);
  }

  // Attribute the (bounded) truncated tail mass to the final iterate so the
  // result remains a distribution to within epsilon.
  if (accumulated < 1.0) {
    const double remainder = 1.0 - accumulated;
    for (std::size_t s = 0; s < state_count_; ++s) result[s] += remainder * pi[s];
  }
  return result;
}

double Ctmc::absorption_cdf(std::span<const double> initial, double t, double epsilon) const {
  const auto p = transient_probabilities(initial, t, epsilon);
  double mass = 0.0;
  for (std::size_t s = 0; s < state_count_; ++s) {
    if (exit_rates_[s] == 0.0) mass += p[s];
  }
  return std::min(mass, 1.0);
}

double Ctmc::absorption_pdf(std::span<const double> initial, double t, double epsilon) const {
  const auto p = transient_probabilities(initial, t, epsilon);
  double flux = 0.0;
  for (const Transition& tr : transitions_) {
    if (exit_rates_[tr.to] == 0.0) flux += p[tr.from] * tr.rate;
  }
  return flux;
}

}  // namespace rejuv::markov
