// FaultyQueue: a deterministic backpressure injector for SpscQueue.
//
// Timing-based queue-full scenarios are inherently flaky in tests; this
// decorator instead refuses exact, pre-planned try_push attempts (1-based
// attempt indices), so the monitor's backpressure and drop paths can be
// exercised with a reproducible refusal pattern and zero timing dependence.
// Everything else forwards to the wrapped queue unchanged.
#pragma once

#include <algorithm>
#include <cstdint>
#include <vector>

#include "monitor/spsc_queue.h"

namespace rejuv::faults {

template <typename T>
class FaultyQueue {
 public:
  /// Wraps `queue` (not owned; must outlive the decorator). `refusals` are
  /// the 1-based try_push attempt indices to reject.
  FaultyQueue(monitor::SpscQueue<T>& queue, std::vector<std::uint64_t> refusals)
      : queue_(queue), refusals_(std::move(refusals)) {
    std::sort(refusals_.begin(), refusals_.end());
  }

  /// Counts the attempt; planned attempts fail as if the ring were full.
  bool try_push(const T& value) {
    const std::uint64_t attempt = ++attempts_;
    while (next_refusal_ < refusals_.size() && refusals_[next_refusal_] < attempt) {
      ++next_refusal_;
    }
    if (next_refusal_ < refusals_.size() && refusals_[next_refusal_] == attempt) {
      ++next_refusal_;
      ++refused_;
      return false;
    }
    return queue_.try_push(value);
  }

  std::size_t pop_batch(T* out, std::size_t max) { return queue_.pop_batch(out, max); }
  void close() noexcept { queue_.close(); }
  bool closed() const noexcept { return queue_.closed(); }
  std::size_t size() const noexcept { return queue_.size(); }
  std::size_t capacity() const noexcept { return queue_.capacity(); }

  std::uint64_t attempts() const noexcept { return attempts_; }
  std::uint64_t refused() const noexcept { return refused_; }

 private:
  monitor::SpscQueue<T>& queue_;
  std::vector<std::uint64_t> refusals_;
  std::size_t next_refusal_ = 0;
  std::uint64_t attempts_ = 0;
  std::uint64_t refused_ = 0;
};

}  // namespace rejuv::faults
