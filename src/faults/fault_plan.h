// Deterministic fault plans for chaos-testing the monitor's input path and
// the cluster coordinator's node layer.
//
// A FaultPlan is a seed plus a list of fault primitives pinned to 1-based
// positions of a clean event stream. Because every primitive fires at an
// exact position and all injected content is derived from the seed, running
// the same plan twice produces byte-identical behaviour — the chaos suite
// and the CLI determinism test both depend on this. Plans are written in a
// compact spec grammar so they can travel through a command line:
//
//   plan      := item ("," item)*
//   item      := "seed=" N | host? primitive "@" POS suffix?
//   host      := "h" N ":"  (cluster plans only: pin the item to host N)
//   primitive := "disconnect" | "stall" | "partial" | "garble" | "eof"
//              | "crash" | "hang" | "slow" | "false-trigger"
//   suffix    := ":" MS "ms"   (stall, slow: duration)
//              | "x" COUNT    (garble only: malformed lines in the burst)
//
// Example: "seed=42,garble@100x3,disconnect@500,stall@800:40ms,eof@1200".
//
// The position axis depends on the consumer. For a FaultySource, POS is the
// 1-based clean-line index of the input stream, and `crash` is
// process-death: a terminal error that reopen() cannot clear (recovery
// means a new process, resuming from a checkpoint journal). For the cluster
// coordinator (src/cluster), crash/hang/slow key on restore-attempt
// ordinals and false-trigger on completed-transaction ordinals —
// cluster-wide when the item is unprefixed, host-local with an "hN:"
// prefix. Node- and source-level chaos thus share one grammar and one
// determinism contract.
#pragma once

#include <chrono>
#include <cstdint>
#include <string>
#include <string_view>
#include <vector>

namespace rejuv::faults {

enum class FaultKind : std::uint8_t {
  kDisconnect,    ///< source reports kError once; recoverable via reopen()
  kStall,         ///< source yields kTimeout for a wall-clock duration
  kPartial,       ///< one extra kTimeout before the line (a short read)
  kGarble,        ///< a burst of malformed lines injected before the line
  kEof,           ///< source reports kEnd; resumable via reopen()
  kCrash,         ///< process death: source = terminal error (reopen fails);
                  ///< node = state lost mid-restore unless checkpointed
  kHang,          ///< node only: a restore attempt that never completes
  kSlowRestore,   ///< node only: a restore attempt extended by the duration
  kFalseTrigger,  ///< node only: spurious rejuvenation trigger injected
};

/// Spec-grammar name, e.g. "disconnect".
std::string_view fault_kind_name(FaultKind kind);

/// True for kinds that only make sense against the cluster node layer
/// (hang, slow, false-trigger); FaultySource rejects plans containing them.
bool is_node_only(FaultKind kind);

/// One fault primitive, armed at a 1-based stream position.
struct FaultSpec {
  FaultKind kind = FaultKind::kDisconnect;
  /// Fires just before the at_line-th clean event (1-based) is delivered.
  std::uint64_t at_line = 1;
  /// kGarble: number of malformed lines in the burst.
  std::uint64_t count = 1;
  /// kStall: how long the source stays silent. kSlowRestore: extra restore
  /// time (simulated, milliseconds of simulation time).
  std::chrono::milliseconds duration{50};
  /// Cluster plans: host index the item is pinned to; -1 = unprefixed
  /// (cluster-wide ordinal axis). Sources reject host-scoped items.
  std::int32_t host = -1;
};

struct FaultPlan {
  std::uint64_t seed = 0;
  std::vector<FaultSpec> faults;  ///< kept sorted by at_line (parse sorts)

  /// Parses the spec grammar above; throws std::invalid_argument with a
  /// pointed message on any malformed item.
  static FaultPlan parse(std::string_view spec);

  /// Canonical spec string; parse(describe()) reproduces the plan.
  std::string describe() const;
};

/// The deterministic malformed payload injected by a garble burst: line
/// `index` (0-based within the burst) ahead of clean line `at_line`, under
/// `seed`. Exposed so tests can predict injected bytes exactly.
std::string garble_line(std::uint64_t seed, std::uint64_t at_line, std::uint64_t index);

}  // namespace rejuv::faults
