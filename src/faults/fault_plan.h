// Deterministic fault plans for chaos-testing the monitor's input path.
//
// A FaultPlan is a seed plus a list of fault primitives pinned to 1-based
// line positions of the clean input stream. Because every primitive fires at
// an exact line index and all injected content is derived from the seed,
// running the same plan twice produces byte-identical behaviour — the chaos
// suite and the CLI determinism test both depend on this. Plans are written
// in a compact spec grammar so they can travel through the rejuv-monitor
// command line:
//
//   plan      := item ("," item)*
//   item      := "seed=" N | primitive "@" LINE suffix?
//   primitive := "disconnect" | "stall" | "partial" | "garble" | "eof"
//   suffix    := ":" MS "ms"   (stall only: stall duration)
//              | "x" COUNT    (garble only: malformed lines in the burst)
//
// Example: "seed=42,garble@100x3,disconnect@500,stall@800:40ms,eof@1200".
#pragma once

#include <chrono>
#include <cstdint>
#include <string>
#include <string_view>
#include <vector>

namespace rejuv::faults {

enum class FaultKind : std::uint8_t {
  kDisconnect,  ///< source reports kError once; recoverable via reopen()
  kStall,       ///< source yields kTimeout for a wall-clock duration
  kPartial,     ///< one extra kTimeout before the line (a short read)
  kGarble,      ///< a burst of malformed lines injected before the line
  kEof,         ///< source reports kEnd; resumable via reopen()
};

/// Spec-grammar name, e.g. "disconnect".
std::string_view fault_kind_name(FaultKind kind);

/// One fault primitive, armed at a clean-stream line position.
struct FaultSpec {
  FaultKind kind = FaultKind::kDisconnect;
  /// Fires just before the at_line-th clean line (1-based) is delivered.
  std::uint64_t at_line = 1;
  /// kGarble: number of malformed lines in the burst.
  std::uint64_t count = 1;
  /// kStall: how long the source stays silent.
  std::chrono::milliseconds duration{50};
};

struct FaultPlan {
  std::uint64_t seed = 0;
  std::vector<FaultSpec> faults;  ///< kept sorted by at_line (parse sorts)

  /// Parses the spec grammar above; throws std::invalid_argument with a
  /// pointed message on any malformed item.
  static FaultPlan parse(std::string_view spec);

  /// Canonical spec string; parse(describe()) reproduces the plan.
  std::string describe() const;
};

/// The deterministic malformed payload injected by a garble burst: line
/// `index` (0-based within the burst) ahead of clean line `at_line`, under
/// `seed`. Exposed so tests can predict injected bytes exactly.
std::string garble_line(std::uint64_t seed, std::uint64_t at_line, std::uint64_t index);

}  // namespace rejuv::faults
