#include "faults/faulty_source.h"

#include <algorithm>
#include <stdexcept>
#include <thread>

#include "common/expect.h"

namespace rejuv::faults {

FaultySource::FaultySource(std::unique_ptr<monitor::Source> inner, FaultPlan plan)
    : inner_(std::move(inner)), plan_(std::move(plan)) {
  REJUV_EXPECT(inner_ != nullptr, "faulty source needs an inner source");
  for (const FaultSpec& fault : plan_.faults) {
    if (is_node_only(fault.kind)) {
      throw std::invalid_argument("fault kind \"" + std::string(fault_kind_name(fault.kind)) +
                                  "\" is node-level only; sources take "
                                  "disconnect/stall/partial/garble/eof/crash");
    }
    if (fault.host >= 0) {
      throw std::invalid_argument(
          "host-scoped fault items (hN:) are cluster-level; "
          "sources take unprefixed plans");
    }
  }
}

std::string FaultySource::describe() const { return "faulty(" + inner_->describe() + ")"; }

monitor::SourceStats FaultySource::stats() const {
  monitor::SourceStats stats = inner_->stats();
  stats.faults_injected += faults_injected_;
  return stats;
}

std::string FaultySource::last_error() const {
  return last_error_.empty() ? inner_->last_error() : last_error_;
}

bool FaultySource::reopen() {
  if (crashed_) {
    // Process death is not a reconnect: the supervisor has to give up on
    // this source and a fresh process resumes from the checkpoint journal.
    return false;
  }
  if (error_active_ || eof_active_) {
    // The failure was injected; the inner source never actually broke, so
    // "reopening" is just dropping the injected condition.
    error_active_ = false;
    eof_active_ = false;
    last_error_.clear();
    return true;
  }
  return inner_->reopen();
}

monitor::Source::Status FaultySource::next_line(std::string& line,
                                                std::chrono::milliseconds timeout) {
  if (crashed_) return Status::kError;
  if (error_active_) return Status::kError;
  if (eof_active_) return Status::kEnd;
  const auto deadline = std::chrono::steady_clock::now() + timeout;
  while (true) {
    // Fire every primitive armed at the position of the next clean line.
    // Returning primitives (disconnect/eof/partial) leave next_fault_
    // advanced, so re-entry after recovery continues with the next one.
    while (next_fault_ < plan_.faults.size() &&
           plan_.faults[next_fault_].at_line == position_) {
      const FaultSpec& fault = plan_.faults[next_fault_++];
      ++faults_injected_;
      switch (fault.kind) {
        case FaultKind::kDisconnect:
          error_active_ = true;
          last_error_ = "injected disconnect@" + std::to_string(fault.at_line);
          return Status::kError;
        case FaultKind::kEof:
          eof_active_ = true;
          return Status::kEnd;
        case FaultKind::kStall:
          stalled_ = true;
          stall_until_ = std::chrono::steady_clock::now() + fault.duration;
          break;
        case FaultKind::kPartial:
          // Model a short read: the caller sees one empty wait before the
          // line arrives intact on the next call.
          return Status::kTimeout;
        case FaultKind::kGarble:
          garbles_left_ = fault.count;
          garble_at_line_ = fault.at_line;
          garble_index_ = 0;
          break;
        case FaultKind::kCrash:
          crashed_ = true;
          last_error_ = "injected crash@" + std::to_string(fault.at_line) +
                        " (process death; reopen impossible)";
          return Status::kError;
        case FaultKind::kHang:
        case FaultKind::kSlowRestore:
        case FaultKind::kFalseTrigger:
          break;  // rejected by the constructor; unreachable
      }
    }
    if (garbles_left_ > 0) {
      line = garble_line(plan_.seed, garble_at_line_, garble_index_++);
      --garbles_left_;
      return Status::kLine;
    }
    if (stalled_) {
      const auto now = std::chrono::steady_clock::now();
      if (now < stall_until_) {
        std::this_thread::sleep_until(std::min(stall_until_, deadline));
        if (stall_until_ > deadline) return Status::kTimeout;
      }
      stalled_ = false;
    }
    const auto remaining = std::chrono::duration_cast<std::chrono::milliseconds>(
        deadline - std::chrono::steady_clock::now());
    const Status status =
        inner_->next_line(line, std::max(remaining, std::chrono::milliseconds(0)));
    if (status == Status::kLine) ++position_;
    return status;
  }
}

}  // namespace rejuv::faults
