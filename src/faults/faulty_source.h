// FaultySource: a Source decorator that executes a FaultPlan.
//
// The decorator sits between the monitor's ingest loop and any real source
// (vector, file, tcp) and fires each primitive of the plan just before the
// corresponding clean line is delivered. Faults are positional, not timed,
// so the same plan over the same input is byte-identical across runs. Every
// primitive is decision-lossless in blocking mode: disconnect and eof are
// recoverable via reopen() (without touching the healthy inner source),
// stall and partial only delay delivery, and garbled lines are rejected by
// the observation parser without consuming a clean line. The one exception
// is crash — process death — which is a *terminal* error: reopen() refuses
// to clear it, because recovering from a crash means starting a new process
// and resuming from the checkpoint journal, not reconnecting. Node-only
// primitives (hang, slow, false-trigger) and host-scoped ("hN:") items are
// cluster-level concepts; the constructor rejects plans containing them.
#pragma once

#include <chrono>
#include <cstdint>
#include <memory>
#include <string>

#include "faults/fault_plan.h"
#include "monitor/source.h"

namespace rejuv::faults {

class FaultySource final : public monitor::Source {
 public:
  /// Takes ownership of `inner`; the plan is fixed for the source's life.
  FaultySource(std::unique_ptr<monitor::Source> inner, FaultPlan plan);

  Status next_line(std::string& line, std::chrono::milliseconds timeout) override;
  std::string describe() const override;
  /// Inner stats plus the number of plan primitives fired so far.
  monitor::SourceStats stats() const override;
  std::string last_error() const override;
  /// Clears an injected disconnect/eof (the healthy inner source is not
  /// touched); otherwise forwards to the inner source. An injected crash is
  /// terminal: reopen() returns false while one is active.
  bool reopen() override;

  /// Plan primitives fired so far.
  std::uint64_t faults_injected() const noexcept { return faults_injected_; }

 private:
  std::unique_ptr<monitor::Source> inner_;
  FaultPlan plan_;
  std::size_t next_fault_ = 0;    ///< first un-fired entry of plan_.faults
  std::uint64_t position_ = 1;    ///< 1-based index of the next clean line
  std::uint64_t garbles_left_ = 0;     ///< malformed lines still to inject
  std::uint64_t garble_at_line_ = 0;   ///< burst position, for payload derivation
  std::uint64_t garble_index_ = 0;     ///< next index within the burst
  bool error_active_ = false;          ///< injected disconnect awaiting reopen
  bool eof_active_ = false;            ///< injected eof awaiting reopen
  bool crashed_ = false;               ///< injected crash; terminal, reopen fails
  bool stalled_ = false;
  std::chrono::steady_clock::time_point stall_until_{};
  std::uint64_t faults_injected_ = 0;
  std::string last_error_;
};

}  // namespace rejuv::faults
