#include "faults/fault_plan.h"

#include <algorithm>
#include <charconv>
#include <stdexcept>

#include "common/rng.h"

namespace rejuv::faults {

namespace {

[[noreturn]] void bad_spec(std::string_view item, const std::string& why) {
  throw std::invalid_argument("bad fault spec item \"" + std::string(item) + "\": " + why);
}

std::uint64_t parse_u64(std::string_view text, std::string_view item, const char* what) {
  std::uint64_t value = 0;
  const auto [ptr, ec] = std::from_chars(text.data(), text.data() + text.size(), value);
  if (ec != std::errc{} || ptr != text.data() + text.size()) {
    bad_spec(item, std::string("cannot parse ") + what);
  }
  return value;
}

bool takes_duration(FaultKind kind) {
  return kind == FaultKind::kStall || kind == FaultKind::kSlowRestore;
}

}  // namespace

std::string_view fault_kind_name(FaultKind kind) {
  switch (kind) {
    case FaultKind::kDisconnect:
      return "disconnect";
    case FaultKind::kStall:
      return "stall";
    case FaultKind::kPartial:
      return "partial";
    case FaultKind::kGarble:
      return "garble";
    case FaultKind::kEof:
      return "eof";
    case FaultKind::kCrash:
      return "crash";
    case FaultKind::kHang:
      return "hang";
    case FaultKind::kSlowRestore:
      return "slow";
    case FaultKind::kFalseTrigger:
      return "false-trigger";
  }
  return "unknown";
}

bool is_node_only(FaultKind kind) {
  return kind == FaultKind::kHang || kind == FaultKind::kSlowRestore ||
         kind == FaultKind::kFalseTrigger;
}

FaultPlan FaultPlan::parse(std::string_view spec) {
  FaultPlan plan;
  std::size_t start = 0;
  while (start <= spec.size()) {
    const std::size_t comma = spec.find(',', start);
    std::string_view item = spec.substr(
        start, comma == std::string_view::npos ? std::string_view::npos : comma - start);
    start = comma == std::string_view::npos ? spec.size() + 1 : comma + 1;
    if (item.empty()) {
      if (spec.empty()) break;  // an entirely empty spec is a valid empty plan
      bad_spec(item, "empty item");
    }

    if (item.rfind("seed=", 0) == 0) {
      plan.seed = parse_u64(item.substr(5), item, "seed");
      continue;
    }

    FaultSpec fault;

    // Optional "hN:" host prefix. Only a colon made entirely of digits
    // between the 'h' and ':' and sitting before the '@' is a prefix, so
    // bare "hang@3" still parses as the hang primitive.
    std::string_view body = item;
    if (body.size() > 2 && body[0] == 'h') {
      const std::size_t colon = body.find(':');
      const std::size_t at = body.find('@');
      if (colon != std::string_view::npos && colon > 1 &&
          (at == std::string_view::npos || colon < at)) {
        const std::string_view digits = body.substr(1, colon - 1);
        if (std::all_of(digits.begin(), digits.end(),
                        [](char c) { return c >= '0' && c <= '9'; })) {
          fault.host = static_cast<std::int32_t>(parse_u64(digits, item, "host index"));
          body = body.substr(colon + 1);
        }
      }
    }

    const std::size_t at = body.find('@');
    if (at == std::string_view::npos) {
      bad_spec(item, "expected seed=N or [hH:]KIND@POS");
    }
    const std::string_view kind_text = body.substr(0, at);
    std::string_view rest = body.substr(at + 1);

    if (kind_text == "disconnect") {
      fault.kind = FaultKind::kDisconnect;
    } else if (kind_text == "stall") {
      fault.kind = FaultKind::kStall;
    } else if (kind_text == "partial") {
      fault.kind = FaultKind::kPartial;
    } else if (kind_text == "garble") {
      fault.kind = FaultKind::kGarble;
    } else if (kind_text == "eof") {
      fault.kind = FaultKind::kEof;
    } else if (kind_text == "crash") {
      fault.kind = FaultKind::kCrash;
    } else if (kind_text == "hang") {
      fault.kind = FaultKind::kHang;
    } else if (kind_text == "slow") {
      fault.kind = FaultKind::kSlowRestore;
    } else if (kind_text == "false-trigger") {
      fault.kind = FaultKind::kFalseTrigger;
    } else {
      bad_spec(item, "unknown fault kind \"" + std::string(kind_text) + "\"");
    }

    // Optional suffix: ":MSms" (stall, slow) or "xCOUNT" (garble).
    const std::size_t colon = rest.find(':');
    const std::size_t x = rest.find('x');
    std::string_view line_text = rest;
    if (colon != std::string_view::npos) {
      if (!takes_duration(fault.kind)) {
        bad_spec(item, "only stall and slow take a :MSms duration");
      }
      line_text = rest.substr(0, colon);
      std::string_view ms_text = rest.substr(colon + 1);
      if (ms_text.size() < 3 || ms_text.substr(ms_text.size() - 2) != "ms") {
        bad_spec(item, "duration must end in \"ms\"");
      }
      fault.duration = std::chrono::milliseconds(
          parse_u64(ms_text.substr(0, ms_text.size() - 2), item, "duration"));
    } else if (x != std::string_view::npos) {
      if (fault.kind != FaultKind::kGarble) bad_spec(item, "only garble takes an xCOUNT burst");
      line_text = rest.substr(0, x);
      fault.count = parse_u64(rest.substr(x + 1), item, "count");
      if (fault.count == 0) bad_spec(item, "burst count must be at least 1");
    }

    fault.at_line = parse_u64(line_text, item, "line position");
    if (fault.at_line == 0) bad_spec(item, "line positions are 1-based");
    plan.faults.push_back(fault);
  }

  std::stable_sort(plan.faults.begin(), plan.faults.end(),
                   [](const FaultSpec& a, const FaultSpec& b) { return a.at_line < b.at_line; });
  return plan;
}

std::string FaultPlan::describe() const {
  std::string text = "seed=";
  text += std::to_string(seed);
  for (const FaultSpec& fault : faults) {
    text += ",";
    if (fault.host >= 0) {
      text += "h";
      text += std::to_string(fault.host);
      text += ":";
    }
    text += fault_kind_name(fault.kind);
    text += "@";
    text += std::to_string(fault.at_line);
    if (takes_duration(fault.kind)) {
      text += ":";
      text += std::to_string(fault.duration.count());
      text += "ms";
    } else if (fault.kind == FaultKind::kGarble && fault.count != 1) {
      text += "x";
      text += std::to_string(fault.count);
    }
  }
  return text;
}

std::string garble_line(std::uint64_t seed, std::uint64_t at_line, std::uint64_t index) {
  // One SplitMix64 draw keyed on (seed, position, index) gives a stable
  // 16-hex-digit garbage token; the '!' prefix guarantees the parser
  // classifies it as malformed (not a number, comment, or JSON).
  common::SplitMix64 rng(seed ^ (at_line * 0x9e3779b97f4a7c15ULL) ^ index);
  const std::uint64_t bits = rng.next();
  static constexpr char kHex[] = "0123456789abcdef";
  std::string line = "!chaos-";
  for (int shift = 60; shift >= 0; shift -= 4) {
    line.push_back(kHex[(bits >> shift) & 0xF]);
  }
  return line;
}

}  // namespace rejuv::faults
