#include "sim/collector.h"

namespace rejuv::sim {

Collector::Collector(std::uint64_t warmup, bool keep_series)
    : warmup_(warmup), keep_series_(keep_series) {}

void Collector::observe(double value) {
  ++offered_;
  if (offered_ <= warmup_) return;
  stats_.push(value);
  if (keep_series_) series_.push_back(value);
}

void Collector::reset() noexcept {
  offered_ = 0;
  stats_.reset();
  series_.clear();
}

}  // namespace rejuv::sim
