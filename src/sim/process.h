// Process-interaction modeling on top of the event-driven core, using C++20
// coroutines.
//
// The event-callback style of EcommerceSystem is the fastest way to express
// a model, but many simulations read more naturally as *processes*: each
// entity is a coroutine that waits for time to pass (co_await delay(t)) and
// for resources to become available (co_await resource.acquire()). This
// header provides exactly that, with deterministic semantics inherited from
// the event queue: resumptions scheduled at the same instant run in
// scheduling order, and resource grants are FIFO.
//
//   sim::Process customer(sim::Simulator& sim, sim::Resource& server,
//                         double service_time, Stats& stats) {
//     const double arrived = sim.now();
//     co_await server.acquire();
//     co_await sim::delay(service_time);
//     server.release();
//     stats.push(sim.now() - arrived);
//   }
//
//   sim::ProcessSet processes(sim);
//   processes.spawn(customer(sim, server, 1.7, stats));
//   sim.run();
//
// Lifetime rules: ProcessSet owns its processes and must outlive the run;
// a Resource must outlive every process that awaits it. Destroying a
// ProcessSet cancels any pending delay resumptions of unfinished processes.
#pragma once

#include <coroutine>
#include <deque>
#include <exception>
#include <utility>

#include "common/expect.h"
#include "sim/simulator.h"

namespace rejuv::sim {

/// Coroutine handle owner; create by calling a coroutine returning Process,
/// then hand it to ProcessSet::spawn to bind it to a simulator and start it.
class Process {
 public:
  struct promise_type {
    Simulator* simulator = nullptr;
    EventId pending_event = kNoEvent;
    std::exception_ptr failure;

    Process get_return_object() {
      return Process(std::coroutine_handle<promise_type>::from_promise(*this));
    }
    std::suspend_always initial_suspend() noexcept { return {}; }
    std::suspend_always final_suspend() noexcept { return {}; }
    void return_void() noexcept {}
    void unhandled_exception() noexcept { failure = std::current_exception(); }
  };
  using Handle = std::coroutine_handle<promise_type>;

  Process(Process&& other) noexcept : handle_(std::exchange(other.handle_, nullptr)) {}
  Process& operator=(Process&& other) noexcept {
    if (this != &other) {
      destroy();
      handle_ = std::exchange(other.handle_, nullptr);
    }
    return *this;
  }
  Process(const Process&) = delete;
  Process& operator=(const Process&) = delete;
  ~Process() { destroy(); }

  bool valid() const noexcept { return handle_ != nullptr; }
  bool done() const noexcept { return handle_ == nullptr || handle_.done(); }

  /// Rethrows an exception that escaped the coroutine body, if any.
  void rethrow_if_failed() const {
    if (handle_ && handle_.promise().failure) std::rethrow_exception(handle_.promise().failure);
  }

 private:
  friend class ProcessSet;
  friend struct DelayAwaiter;

  explicit Process(Handle handle) noexcept : handle_(handle) {}

  void destroy() noexcept {
    if (handle_ == nullptr) return;
    // Cancel a pending timer so no event resumes a destroyed coroutine.
    promise_type& promise = handle_.promise();
    if (promise.simulator != nullptr && promise.pending_event != kNoEvent) {
      promise.simulator->cancel(promise.pending_event);
    }
    handle_.destroy();
    handle_ = nullptr;
  }

  Handle handle_ = nullptr;
};

/// Awaitable returned by delay(): suspends the process for a span of
/// simulation time. delay(0) still suspends for one event-queue round,
/// preserving deterministic same-instant ordering.
struct DelayAwaiter {
  double seconds;

  bool await_ready() const noexcept { return false; }
  void await_suspend(Process::Handle handle) const {
    Process::promise_type& promise = handle.promise();
    REJUV_EXPECT(promise.simulator != nullptr,
                 "co_await delay() outside a spawned process");
    promise.pending_event = promise.simulator->schedule_after(seconds, [handle]() mutable {
      handle.promise().pending_event = kNoEvent;
      handle.resume();
    });
  }
  void await_resume() const noexcept {}
};

/// Waits for `seconds` of simulation time.
inline DelayAwaiter delay(double seconds) {
  REJUV_EXPECT(seconds >= 0.0, "delay must be non-negative");
  return {seconds};
}

/// Owns and runs a set of processes on one simulator.
class ProcessSet {
 public:
  explicit ProcessSet(Simulator& simulator) noexcept : simulator_(simulator) {}
  ProcessSet(const ProcessSet&) = delete;
  ProcessSet& operator=(const ProcessSet&) = delete;

  /// Binds the process to the simulator and runs it until its first await.
  /// Returns its index (stable; processes are never removed).
  std::size_t spawn(Process process) {
    REJUV_EXPECT(process.valid(), "cannot spawn an empty process");
    process.handle_.promise().simulator = &simulator_;
    processes_.push_back(std::move(process));
    processes_.back().handle_.resume();
    return processes_.size() - 1;
  }

  std::size_t size() const noexcept { return processes_.size(); }

  /// Number of processes that have not finished.
  std::size_t active() const noexcept {
    std::size_t count = 0;
    for (const Process& process : processes_) count += process.done() ? 0 : 1;
    return count;
  }

  const Process& at(std::size_t index) const {
    REJUV_EXPECT(index < processes_.size(), "process index out of range");
    return processes_[index];
  }

  /// Rethrows the first exception that escaped any process body.
  void rethrow_failures() const {
    for (const Process& process : processes_) process.rethrow_if_failed();
  }

 private:
  Simulator& simulator_;
  std::deque<Process> processes_;
};

/// A counting resource (c servers, FIFO grant order). Await acquire() to
/// take one unit; call release() to hand it back. Grants are delivered
/// through the event queue at the current instant, so they interleave
/// deterministically with other same-time events.
class Resource {
 public:
  Resource(Simulator& simulator, std::size_t capacity)
      : simulator_(simulator), available_(capacity) {
    REJUV_EXPECT(capacity >= 1, "resource needs positive capacity");
  }
  Resource(const Resource&) = delete;
  Resource& operator=(const Resource&) = delete;

  struct AcquireAwaiter {
    Resource& resource;

    bool await_ready() const noexcept {
      if (resource.available_ == 0) return false;
      --resource.available_;
      return true;
    }
    void await_suspend(Process::Handle handle) { resource.waiters_.push_back(handle); }
    void await_resume() const noexcept {}
  };

  /// co_await to obtain one unit (immediately if available, FIFO otherwise).
  [[nodiscard]] AcquireAwaiter acquire() noexcept { return {*this}; }

  /// Returns one unit; the longest-waiting process (if any) receives it at
  /// the current simulation instant.
  void release() {
    if (waiters_.empty()) {
      ++available_;
      return;
    }
    // The unit passes directly to the next waiter; capacity never observably
    // rises. Resumption goes through the event queue for deterministic
    // interleaving with other events at this instant.
    const Process::Handle next = waiters_.front();
    waiters_.pop_front();
    simulator_.schedule_after(0.0, [next]() mutable { next.resume(); });
  }

  std::size_t available() const noexcept { return available_; }
  std::size_t waiting() const noexcept { return waiters_.size(); }

 private:
  Simulator& simulator_;
  std::size_t available_;
  std::deque<Process::Handle> waiters_;
};

}  // namespace rejuv::sim
