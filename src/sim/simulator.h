// Discrete-event simulation executive.
//
// A thin driver over EventQueue: owns the clock, executes events in
// (time, insertion) order, and enforces that time never runs backwards.
// Model code schedules closures; closures may schedule and cancel further
// events, including events at the current instant (which run after all
// earlier-inserted events at that instant — deterministic FIFO).
#pragma once

#include <cstdint>
#include <functional>

#include "obs/metrics.h"
#include "sim/event_queue.h"

namespace rejuv::sim {

class Simulator {
 public:
  /// Current simulation time; starts at 0.
  double now() const noexcept { return now_; }

  /// Schedules an action at an absolute time >= now().
  EventId schedule_at(double time, std::function<void()> action);

  /// Schedules an action `delay >= 0` after now().
  EventId schedule_after(double delay, std::function<void()> action);

  /// Cancels a pending event; false if it already ran or was cancelled.
  bool cancel(EventId id) { return events_.cancel(id); }

  bool has_pending(EventId id) const { return events_.pending(id); }
  std::size_t pending_events() const noexcept { return events_.size(); }
  std::uint64_t executed_events() const noexcept { return executed_; }

  /// Executes the next event. Returns false when the queue is empty.
  bool step();

  /// Runs until no events remain.
  void run();

  /// Runs all events with time <= horizon, then advances the clock to the
  /// horizon (even if idle).
  void run_until(double horizon);

  /// Drops all pending events; the clock keeps its value.
  void clear_pending() noexcept { events_.clear(); }

  /// Publishes executive counters (events executed, pending depth, clock)
  /// into `registry`. Handles are cached once so the per-event cost with
  /// metrics enabled is two relaxed stores; with the default nullptr the
  /// step loop is untouched.
  void set_metrics(obs::MetricsRegistry* registry);

 private:
  EventQueue events_;
  double now_ = 0.0;
  std::uint64_t executed_ = 0;
  obs::Counter* executed_counter_ = nullptr;
  obs::Gauge* pending_gauge_ = nullptr;
  obs::Gauge* clock_gauge_ = nullptr;
};

}  // namespace rejuv::sim
