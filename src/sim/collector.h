// Observation collection with warm-up handling.
//
// Simulation outputs (response times) pass through a Collector that skips a
// configurable warm-up prefix, maintains running summary statistics, and can
// optionally retain the full series (needed by the autocorrelation study of
// section 4.1 and by batch-means analysis).
#pragma once

#include <cstdint>
#include <vector>

#include "stats/running_stats.h"

namespace rejuv::sim {

class Collector {
 public:
  /// `warmup`: number of leading observations excluded from statistics.
  /// `keep_series`: retain post-warm-up observations in memory.
  explicit Collector(std::uint64_t warmup = 0, bool keep_series = false);

  void observe(double value);

  /// Total observations offered, including warm-up.
  std::uint64_t offered() const noexcept { return offered_; }
  /// Observations included in the statistics.
  std::uint64_t counted() const noexcept { return stats_.count(); }

  const stats::RunningStats& statistics() const noexcept { return stats_; }
  const std::vector<double>& series() const noexcept { return series_; }

  void reset() noexcept;

 private:
  std::uint64_t warmup_;
  bool keep_series_;
  std::uint64_t offered_ = 0;
  stats::RunningStats stats_;
  std::vector<double> series_;
};

}  // namespace rejuv::sim
