#include "sim/event_queue.h"

#include <cmath>
#include <utility>

#include "common/expect.h"

namespace rejuv::sim {

EventId EventQueue::push(double time, std::function<void()> action) {
  REJUV_EXPECT(std::isfinite(time), "event time must be finite");
  REJUV_EXPECT(static_cast<bool>(action), "event action must be callable");
  const EventId id = next_event_id_++;
  heap_.push_back({time, id, std::move(action)});
  positions_[id] = heap_.size() - 1;
  sift_up(heap_.size() - 1);
  return id;
}

bool EventQueue::cancel(EventId id) {
  const auto it = positions_.find(id);
  if (it == positions_.end()) return false;
  const std::size_t slot = it->second;
  positions_.erase(it);
  if (slot == heap_.size() - 1) {
    heap_.pop_back();
    return true;
  }
  Entry moved = std::move(heap_.back());
  heap_.pop_back();
  const bool goes_up = less(moved, heap_[slot]);
  place(slot, std::move(moved));
  if (goes_up) {
    sift_up(slot);
  } else {
    sift_down(slot);
  }
  return true;
}

double EventQueue::next_time() const {
  REJUV_EXPECT(!heap_.empty(), "next_time on an empty queue");
  return heap_.front().time;
}

EventId EventQueue::next_id() const {
  REJUV_EXPECT(!heap_.empty(), "next_id on an empty queue");
  return heap_.front().id;
}

std::pair<double, std::function<void()>> EventQueue::pop() {
  REJUV_EXPECT(!heap_.empty(), "pop on an empty queue");
  Entry top = std::move(heap_.front());
  positions_.erase(top.id);
  if (heap_.size() == 1) {
    heap_.pop_back();
  } else {
    Entry moved = std::move(heap_.back());
    heap_.pop_back();
    place(0, std::move(moved));
    sift_down(0);
  }
  return {top.time, std::move(top.action)};
}

void EventQueue::clear() noexcept {
  heap_.clear();
  positions_.clear();
}

void EventQueue::place(std::size_t slot, Entry entry) {
  positions_[entry.id] = slot;
  heap_[slot] = std::move(entry);
}

void EventQueue::sift_up(std::size_t slot) {
  while (slot > 0) {
    const std::size_t parent = (slot - 1) / 2;
    if (!less(heap_[slot], heap_[parent])) break;
    positions_[heap_[slot].id] = parent;
    positions_[heap_[parent].id] = slot;
    std::swap(heap_[slot], heap_[parent]);
    slot = parent;
  }
}

void EventQueue::sift_down(std::size_t slot) {
  const std::size_t n = heap_.size();
  while (true) {
    const std::size_t left = 2 * slot + 1;
    const std::size_t right = left + 1;
    std::size_t smallest = slot;
    if (left < n && less(heap_[left], heap_[smallest])) smallest = left;
    if (right < n && less(heap_[right], heap_[smallest])) smallest = right;
    if (smallest == slot) return;
    positions_[heap_[slot].id] = smallest;
    positions_[heap_[smallest].id] = slot;
    std::swap(heap_[slot], heap_[smallest]);
    slot = smallest;
  }
}

}  // namespace rejuv::sim
