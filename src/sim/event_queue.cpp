#include "sim/event_queue.h"

#include <cmath>
#include <utility>

#include "common/expect.h"

namespace rejuv::sim {

std::uint32_t EventQueue::acquire_node() {
  if (!free_.empty()) {
    const std::uint32_t index = free_.back();
    free_.pop_back();
    return index;
  }
  const std::uint32_t index = static_cast<std::uint32_t>(nodes_.size());
  REJUV_ASSERT(index != kFreeSlot, "event slab exhausted");
  nodes_.emplace_back();
  // Keep the free list's capacity ahead of the node count so release_node
  // (and therefore clear()) can never need to allocate.
  if (free_.capacity() < nodes_.capacity()) free_.reserve(nodes_.capacity());
  return index;
}

void EventQueue::release_node(std::uint32_t index) noexcept {
  Node& node = nodes_[index];
  node.action = nullptr;
  node.heap_slot = kFreeSlot;
  ++node.generation;
  free_.push_back(index);  // cannot reallocate: capacity >= nodes_.size()
}

void EventQueue::place(std::size_t slot, const Entry& entry) noexcept {
  heap_[slot] = entry;
  nodes_[entry.node].heap_slot = static_cast<std::uint32_t>(slot);
}

void EventQueue::sift_up(std::size_t slot, Entry entry) noexcept {
  while (slot > 0) {
    const std::size_t parent = (slot - 1) / kArity;
    if (!entry_less(entry, heap_[parent])) break;
    place(slot, heap_[parent]);
    slot = parent;
  }
  place(slot, entry);
}

void EventQueue::sift_down(std::size_t slot, Entry entry) noexcept {
  const std::size_t n = heap_.size();
  for (;;) {
    const std::size_t first = kArity * slot + 1;
    if (first >= n) break;
    const std::size_t last = first + kArity < n ? first + kArity : n;
    std::size_t best = first;
    for (std::size_t child = first + 1; child < last; ++child) {
      if (entry_less(heap_[child], heap_[best])) best = child;
    }
    if (!entry_less(heap_[best], entry)) break;
    place(slot, heap_[best]);
    slot = best;
  }
  place(slot, entry);
}

EventId EventQueue::push(double time, std::function<void()> action) {
  REJUV_EXPECT(std::isfinite(time), "event time must be finite");
  REJUV_EXPECT(static_cast<bool>(action), "event action must be callable");
  const std::uint32_t index = acquire_node();
  Node& node = nodes_[index];
  node.action = std::move(action);
  heap_.emplace_back();  // reserves space; sift_up fills the hole
  sift_up(heap_.size() - 1, Entry{time, next_seq_++, index});
  return make_id(index, node.generation);
}

bool EventQueue::pending(EventId id) const noexcept {
  if (id == kNoEvent) return false;
  const std::uint64_t index = (id >> 32) - 1;
  if (index >= nodes_.size()) return false;
  const Node& node = nodes_[index];
  return node.generation == static_cast<std::uint32_t>(id) && node.heap_slot != kFreeSlot;
}

// Deletes the entry at `slot` by moving the heap's last entry into it.
void EventQueue::remove_slot(std::size_t slot) noexcept {
  if (slot == heap_.size() - 1) {
    heap_.pop_back();
    return;
  }
  const Entry moved = heap_.back();
  heap_.pop_back();
  if (entry_less(moved, heap_[slot])) {
    sift_up(slot, moved);
  } else {
    sift_down(slot, moved);
  }
}

bool EventQueue::cancel(EventId id) {
  if (!pending(id)) return false;
  const std::uint32_t index = static_cast<std::uint32_t>((id >> 32) - 1);
  const std::uint32_t slot = nodes_[index].heap_slot;
  release_node(index);
  remove_slot(slot);
  return true;
}

double EventQueue::next_time() const {
  REJUV_EXPECT(!heap_.empty(), "next_time on an empty queue");
  return heap_.front().time;
}

EventId EventQueue::next_id() const {
  REJUV_EXPECT(!heap_.empty(), "next_id on an empty queue");
  const std::uint32_t index = heap_.front().node;
  return make_id(index, nodes_[index].generation);
}

std::pair<double, std::function<void()>> EventQueue::pop() {
  REJUV_EXPECT(!heap_.empty(), "pop on an empty queue");
  const Entry top = heap_.front();
  std::function<void()> action = std::move(nodes_[top.node].action);
  release_node(top.node);
  remove_slot(0);
  return {top.time, std::move(action)};
}

void EventQueue::clear() noexcept {
  for (const Entry& entry : heap_) release_node(entry.node);
  heap_.clear();
}

}  // namespace rejuv::sim
