// Random variate generation bound to named RNG streams.
//
// Inverse-transform samplers keep results reproducible bit-for-bit for a
// given (seed, stream) pair and make synchronized common-random-numbers
// comparisons possible: the harness gives the arrival process and the
// service process their own streams so that changing the detector never
// perturbs the workload.
#pragma once

#include <cmath>

#include "common/expect.h"
#include "common/rng.h"

namespace rejuv::sim {

/// Exponential variate for a rate the caller has already validated as
/// positive (typically once, at configuration time). Hot paths that sample
/// per transaction use this to keep the parameter check out of the inner
/// loop; the arithmetic is identical to exponential(), bit for bit.
inline double exponential_unchecked(common::RngStream& rng, double rate) noexcept {
  return -std::log(rng.uniform01_open_below()) / rate;
}

/// Exponential variate with the given rate (mean 1/rate).
inline double exponential(common::RngStream& rng, double rate) {
  REJUV_EXPECT(rate > 0.0, "exponential rate must be positive");
  return exponential_unchecked(rng, rate);
}

/// Uniform variate on [lo, hi).
inline double uniform(common::RngStream& rng, double lo, double hi) {
  REJUV_EXPECT(hi > lo, "uniform interval must be non-empty");
  return lo + (hi - lo) * rng.uniform01();
}

/// Bernoulli trial with success probability p.
inline bool bernoulli(common::RngStream& rng, double p) {
  REJUV_EXPECT(p >= 0.0 && p <= 1.0, "probability must lie in [0, 1]");
  return rng.uniform01() < p;
}

/// Standard normal variate (Box-Muller, one value per call; the discarded
/// pair keeps the stream consumption rate constant).
inline double standard_normal(common::RngStream& rng) {
  const double u1 = rng.uniform01_open_below();
  const double u2 = rng.uniform01();
  return std::sqrt(-2.0 * std::log(u1)) * std::cos(2.0 * 3.14159265358979323846 * u2);
}

/// Normal variate with the given mean and standard deviation.
inline double normal(common::RngStream& rng, double mean, double sigma) {
  REJUV_EXPECT(sigma >= 0.0, "sigma must be non-negative");
  return mean + sigma * standard_normal(rng);
}

}  // namespace rejuv::sim
