#include "sim/simulator.h"

#include <cmath>

#include "common/expect.h"

namespace rejuv::sim {

EventId Simulator::schedule_at(double time, std::function<void()> action) {
  REJUV_EXPECT(time >= now_, "cannot schedule an event in the past");
  return events_.push(time, std::move(action));
}

EventId Simulator::schedule_after(double delay, std::function<void()> action) {
  REJUV_EXPECT(delay >= 0.0 && std::isfinite(delay), "delay must be non-negative and finite");
  return events_.push(now_ + delay, std::move(action));
}

bool Simulator::step() {
  if (events_.empty()) return false;
  auto [time, action] = events_.pop();
  now_ = time;
  ++executed_;
  if (executed_counter_ != nullptr) {
    executed_counter_->increment();
    pending_gauge_->set(static_cast<double>(events_.size()));
    clock_gauge_->set(now_);
  }
  action();
  return true;
}

void Simulator::set_metrics(obs::MetricsRegistry* registry) {
  if (registry == nullptr) {
    executed_counter_ = nullptr;
    pending_gauge_ = nullptr;
    clock_gauge_ = nullptr;
    return;
  }
  executed_counter_ = &registry->counter("sim.events_executed");
  pending_gauge_ = &registry->gauge("sim.pending_events");
  clock_gauge_ = &registry->gauge("sim.clock_seconds");
}

void Simulator::run() {
  while (step()) {
  }
}

void Simulator::run_until(double horizon) {
  REJUV_EXPECT(horizon >= now_, "horizon lies in the past");
  while (!events_.empty() && events_.next_time() <= horizon) {
    step();
  }
  now_ = horizon;
}

}  // namespace rejuv::sim
