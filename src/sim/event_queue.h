// Future-event list with O(log n) insert, pop, and true cancellation.
//
// The e-commerce model postpones every running thread's completion when a
// garbage collection fires, and discards all scheduled completions on
// rejuvenation, so cancellation must actually remove events rather than
// lazily skip them (a rejuvenating system would otherwise accumulate dead
// events across the whole run). Implemented as an indexed binary heap:
// a position map from event id to heap slot keeps cancellation O(log n).
// Ties in time break by insertion order (id), giving deterministic FIFO
// semantics for simultaneous events.
#pragma once

#include <cstdint>
#include <functional>
#include <unordered_map>
#include <vector>

namespace rejuv::sim {

/// Opaque handle to a scheduled event.
using EventId = std::uint64_t;

/// Sentinel returned by no function here, but useful to callers that track
/// "no event scheduled".
inline constexpr EventId kNoEvent = 0;

/// Min-heap of (time, id) with user actions attached.
class EventQueue {
 public:
  /// Schedules `action` at absolute `time`. Returns a unique non-zero id.
  EventId push(double time, std::function<void()> action);

  /// Removes a pending event. Returns false if the id is not pending
  /// (already executed, cancelled, or never issued).
  bool cancel(EventId id);

  bool empty() const noexcept { return heap_.empty(); }
  std::size_t size() const noexcept { return heap_.size(); }

  /// Time of the earliest pending event; queue must be non-empty.
  double next_time() const;

  /// Id of the earliest pending event; queue must be non-empty.
  EventId next_id() const;

  /// Removes and returns the earliest event's action (with its time).
  std::pair<double, std::function<void()>> pop();

  /// Whether an id is still pending.
  bool pending(EventId id) const { return positions_.count(id) != 0; }

  /// Discards all pending events.
  void clear() noexcept;

 private:
  struct Entry {
    double time;
    EventId id;
    std::function<void()> action;
  };

  bool less(const Entry& a, const Entry& b) const noexcept {
    return a.time < b.time || (a.time == b.time && a.id < b.id);
  }
  void sift_up(std::size_t slot);
  void sift_down(std::size_t slot);
  void place(std::size_t slot, Entry entry);

  std::vector<Entry> heap_;
  std::unordered_map<EventId, std::size_t> positions_;
  EventId next_event_id_ = 1;
};

}  // namespace rejuv::sim
