// Future-event list with O(log n) insert, pop, and true cancellation.
//
// The e-commerce model postpones every running thread's completion when a
// garbage collection fires, and discards all scheduled completions on
// rejuvenation, so cancellation must actually remove events rather than
// lazily skip them (a rejuvenating system would otherwise accumulate dead
// events across the whole run). Ties in time break by insertion order,
// giving deterministic FIFO semantics for simultaneous events.
//
// This is the simulator's hottest structure — every simulated transaction
// passes through it several times — so it is built for the steady state:
//   * a 4-ary implicit heap of 24-byte {time, seq, node} entries (a parent
//     and its four children span at most two cache lines, so sift-down
//     does ~half the line fetches of a binary heap at the same depth);
//   * actions live in a slab of nodes recycled through a free list, and
//     handles carry a generation tag, so pending()/cancel() are O(1) array
//     lookups instead of hash-map probes;
//   * after warm-up, push/pop/cancel allocate nothing: heap and slab reuse
//     their high-water storage, and the model's action closures fit
//     std::function's small-buffer optimisation (asserted by the counting
//     allocator in obs_overhead_test).
#pragma once

#include <cstdint>
#include <functional>
#include <vector>

namespace rejuv::sim {

/// Opaque handle to a scheduled event.
using EventId = std::uint64_t;

/// Sentinel returned by no function here, but useful to callers that track
/// "no event scheduled".
inline constexpr EventId kNoEvent = 0;

/// Min-heap of (time, insertion order) with user actions attached.
class EventQueue {
 public:
  /// Schedules `action` at absolute `time`. Returns a unique non-zero id.
  EventId push(double time, std::function<void()> action);

  /// Removes a pending event. Returns false if the id is not pending
  /// (already executed, cancelled, or never issued).
  bool cancel(EventId id);

  bool empty() const noexcept { return heap_.empty(); }
  std::size_t size() const noexcept { return heap_.size(); }

  /// Time of the earliest pending event; queue must be non-empty.
  double next_time() const;

  /// Id of the earliest pending event; queue must be non-empty.
  EventId next_id() const;

  /// Removes and returns the earliest event's action (with its time).
  std::pair<double, std::function<void()>> pop();

  /// Whether an id is still pending.
  bool pending(EventId id) const noexcept;

  /// Discards all pending events.
  void clear() noexcept;

 private:
  /// Heap entries are small and trivially copyable; the action stays put
  /// in its slab node while the entry moves through the heap. `seq` is a
  /// monotonic insertion counter — node indices are recycled, so they
  /// cannot serve as the FIFO tie-break the way the old monotonic ids did.
  struct Entry {
    double time;
    std::uint64_t seq;
    std::uint32_t node;
  };

  /// Slab node. `generation` increments on every release, invalidating
  /// outstanding handles to previous occupants of the slot.
  struct Node {
    std::function<void()> action;
    std::uint32_t generation = 0;
    std::uint32_t heap_slot = kFreeSlot;
  };

  static constexpr std::uint32_t kFreeSlot = static_cast<std::uint32_t>(-1);
  static constexpr std::size_t kArity = 4;

  static EventId make_id(std::uint32_t node, std::uint32_t generation) noexcept {
    return (static_cast<EventId>(node) + 1) << 32 | generation;
  }

  static bool entry_less(const Entry& a, const Entry& b) noexcept {
    return a.time < b.time || (a.time == b.time && a.seq < b.seq);
  }

  std::uint32_t acquire_node();
  void release_node(std::uint32_t index) noexcept;
  void place(std::size_t slot, const Entry& entry) noexcept;
  void sift_up(std::size_t slot, Entry entry) noexcept;
  void sift_down(std::size_t slot, Entry entry) noexcept;
  void remove_slot(std::size_t slot) noexcept;

  std::vector<Entry> heap_;
  std::vector<Node> nodes_;
  std::vector<std::uint32_t> free_;  ///< capacity kept >= nodes_.capacity()
  std::uint64_t next_seq_ = 0;
};

}  // namespace rejuv::sim
