// Unified benchmarking subsystem: steady-state timing with warmup,
// repetition, and robust (median/MAD) reporting.
//
// The figure benches reproduce the paper's *statistics*; this library
// measures the *machinery* — how many nanoseconds one observation costs on
// each hot path. Design goals, in order:
//
//   1. Robust numbers on shared/noisy machines: per-benchmark repetitions
//      are summarized by median and median-absolute-deviation, not mean and
//      variance, so a single preempted repetition cannot shift the result.
//   2. Steady state only: the iteration count is auto-calibrated until one
//      repetition exceeds a minimum duration, and warmup repetitions are
//      discarded, so cold caches and lazy page-ins never land in the stats.
//   3. Machine-readable output: results serialize to a single BENCH.json
//      (schema below) that tools/ci.sh diffs against bench/baseline.json —
//      the regression gate every perf PR runs against.
//
// A benchmark is a callable `void(std::uint64_t iterations)` that performs
// exactly `iterations` operations; the harness owns calibration and timing.
// Fixture state lives in the closure, so setup cost is paid once, outside
// the timed region.
#pragma once

#include <cstdint>
#include <functional>
#include <iosfwd>
#include <map>
#include <optional>
#include <string>
#include <vector>

namespace rejuv::benchlib {

/// Compiler barrier: forces `value` to be materialized, preventing the
/// optimizer from deleting a benchmark body whose results are unused.
template <typename T>
inline void do_not_optimize(T const& value) {
#if defined(__GNUC__) || defined(__clang__)
  asm volatile("" : : "r,m"(value) : "memory");
#else
  volatile T sink = value;
  (void)sink;
#endif
}

/// Timing protocol for one run of a suite.
struct BenchOptions {
  int repetitions = 9;          ///< timed repetitions entering the stats
  int warmup_repetitions = 2;   ///< discarded repetitions run first
  double min_rep_seconds = 0.05;  ///< calibration target per repetition
  /// CI quick mode: fewer, shorter repetitions (the ratio gate is tolerant).
  static BenchOptions quick();
};

/// Robust summary of one benchmark's repetitions, in ns per operation.
struct BenchResult {
  std::string suite;   ///< e.g. "detector"
  std::string name;    ///< e.g. "detector.sraa.observe"
  double median_ns = 0.0;  ///< median over repetitions
  double mad_ns = 0.0;     ///< median absolute deviation around median_ns
  double mean_ns = 0.0;
  double min_ns = 0.0;
  double max_ns = 0.0;
  double ops_per_second = 0.0;  ///< 1e9 / median_ns
  std::uint64_t iterations = 0;  ///< calibrated operations per repetition
  int repetitions = 0;
};

/// Median of `values` (not required to be sorted; copied internally).
double median(std::vector<double> values);

/// Median absolute deviation of `values` around `center`.
double median_abs_deviation(std::vector<double> values, double center);

/// One registered benchmark: `run(n)` performs exactly n operations.
struct Benchmark {
  std::string suite;
  std::string name;
  std::function<void(std::uint64_t)> run;
};

/// Named collection of benchmarks; the registry preserves registration
/// order so BENCH.json is stable across runs.
class Registry {
 public:
  /// Registers a benchmark under `suite` with a globally unique `name`;
  /// throws std::invalid_argument on a duplicate name.
  void add(std::string suite, std::string name, std::function<void(std::uint64_t)> run);

  const std::vector<Benchmark>& benchmarks() const noexcept { return benchmarks_; }

  /// Suites present, in first-registration order.
  std::vector<std::string> suites() const;

  /// Runs every benchmark whose suite matches `suite` ("all" = every suite)
  /// and whose name contains `filter` (empty = no filter), in registration
  /// order. `progress` (may be null) receives each result as it lands, so a
  /// CLI can stream a table while a long suite runs.
  std::vector<BenchResult> run(const BenchOptions& options, const std::string& suite = "all",
                               const std::string& filter = "",
                               std::ostream* progress = nullptr) const;

 private:
  std::vector<Benchmark> benchmarks_;
};

/// Times one benchmark under `options` (exposed for benchlib's own tests).
BenchResult run_benchmark(const Benchmark& benchmark, const BenchOptions& options);

/// Run metadata stamped into BENCH.json, so a result file is traceable to
/// the build that produced it.
struct RunMetadata {
  std::string git_sha = "unknown";
  std::string mode = "full";  ///< "full" or "quick"
  int repetitions = 0;
  double min_rep_seconds = 0.0;
};

/// Writes the BENCH.json document: metadata plus one object per benchmark.
void write_json(std::ostream& out, const RunMetadata& metadata,
                const std::vector<BenchResult>& results);

/// A parsed baseline: benchmark name -> median ns/op.
struct BaselineFile {
  std::string git_sha;
  std::map<std::string, double> median_ns;
};

/// Parses a BENCH.json document (e.g. bench/baseline.json). Returns nullopt
/// when the text is not a valid document of the write_json schema.
std::optional<BaselineFile> parse_bench_json(const std::string& text);

/// Reads and parses a BENCH.json file; throws std::invalid_argument when
/// the file cannot be opened or does not parse.
BaselineFile read_baseline_file(const std::string& path);

/// One benchmark that got slower than the gate allows.
struct Regression {
  std::string name;
  double baseline_ns = 0.0;
  double current_ns = 0.0;
  double ratio = 0.0;  ///< current / baseline
};

/// Outcome of gating `results` against a baseline.
struct CompareReport {
  std::vector<Regression> regressions;       ///< current > max_ratio * baseline
  std::vector<std::string> missing_in_baseline;  ///< new benchmarks (not gated)
  std::vector<std::string> improved;         ///< current < baseline / max_ratio

  bool passed() const noexcept { return regressions.empty(); }
};

/// Ratio gate: a benchmark regresses when current median exceeds
/// `max_ratio` times its baseline median. Benchmarks absent from the
/// baseline are listed but never fail the gate (a new benchmark must be
/// land-able before its baseline exists).
CompareReport compare_to_baseline(const std::vector<BenchResult>& results,
                                  const BaselineFile& baseline, double max_ratio);

}  // namespace rejuv::benchlib
