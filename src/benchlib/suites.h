// The repo's standard benchmark suites.
//
// Four suites cover every hot path a production monitor exercises per
// observation or per event:
//
//   detector    — Detector::observe and observe_all for SRAA, SARAA, CLTA
//                 and the static cascade, plus the raw BucketCascade update.
//                 These are the per-observation decision costs the paper's
//                 §5 sweeps multiply by millions of transactions.
//   bank        — the SoA detector bank's vectorized row kernel at 1024
//                 lanes vs the same 1024 detectors as independent scalar
//                 instances (bank.<family>.rows_1024 / .scalar_1024); the
//                 pair's ratio is the fleet-scale speedup docs/BANKS.md
//                 claims.
//   sim         — future-event-list push/pop and schedule/cancel at depth
//                 1024, the simulator's per-event cost.
//   event_queue — the 4-ary heap under deeper and nastier regimes: steady
//                 churn at depth 4096, mid-heap reschedule (the GC-postpone
//                 pattern), and full fill/drain cycles.
//   exec        — the work-stealing execution engine: owner-side deque ops,
//                 per-task dispatch + join through a TaskGroup, and
//                 parallel_map fan-out (the sweep harness's work-item cost).
//   monitor     — the SPSC ring the ingest thread feeds and the checkpoint
//                 record serialize/parse round trip.
//   cluster     — the coordinator's per-transaction bookkeeping and the
//                 batch-amortized end-to-end cost per offered transaction of
//                 a coordinated cluster run, one entry per scheduling
//                 strategy (plus a checkpoint-every-observation variant).
//   obs         — tracer emit cost with no sink (the always-on branch) and
//                 with a JSONL sink (the traced-run overhead).
//   ingestion   — the fleet wire path: binary frame decode vs legacy text
//                 parse, the 100k-resident stream-table lookup, and the
//                 whole FleetMonitor engine end to end over pipes and
//                 loopback TCP at 1k and 100k streams (ops_per_second is
//                 the aggregate msgs/s the fleet sustains).
//
// Workload data is deterministic (fixed-seed RngStream), so two runs on the
// same machine measure the same instruction stream.
#pragma once

#include "benchlib/benchlib.h"

namespace rejuv::benchlib {

/// Registers every standard suite into `registry`.
void register_standard_suites(Registry& registry);

}  // namespace rejuv::benchlib
