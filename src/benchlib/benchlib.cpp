#include "benchlib/benchlib.h"

#include <algorithm>
#include <cctype>
#include <charconv>
#include <chrono>
#include <cmath>
#include <fstream>
#include <ostream>
#include <sstream>
#include <stdexcept>
#include <utility>

#include "common/expect.h"

namespace rejuv::benchlib {

namespace {

using Clock = std::chrono::steady_clock;

double time_once(const std::function<void(std::uint64_t)>& run, std::uint64_t iterations) {
  const auto start = Clock::now();
  run(iterations);
  const auto stop = Clock::now();
  return std::chrono::duration<double>(stop - start).count();
}

/// Shortest round-trip double formatting (same policy as the checkpoint
/// journal): a BENCH.json re-read compares equal to what was measured.
std::string format_double(double value) {
  char buffer[64];
  const auto [end, ec] = std::to_chars(buffer, buffer + sizeof buffer, value);
  REJUV_EXPECT(ec == std::errc(), "double formatting failed");
  return std::string(buffer, end);
}

std::string escape(std::string_view text) {
  std::string out;
  out.reserve(text.size());
  for (const char c : text) {
    switch (c) {
      case '"': out += "\\\""; break;
      case '\\': out += "\\\\"; break;
      case '\n': out += "\\n"; break;
      case '\r': out += "\\r"; break;
      case '\t': out += "\\t"; break;
      default: out += c; break;
    }
  }
  return out;
}

}  // namespace

BenchOptions BenchOptions::quick() {
  BenchOptions options;
  options.repetitions = 5;
  options.warmup_repetitions = 1;
  options.min_rep_seconds = 0.01;
  return options;
}

double median(std::vector<double> values) {
  REJUV_EXPECT(!values.empty(), "median of an empty sample");
  std::sort(values.begin(), values.end());
  const std::size_t mid = values.size() / 2;
  if (values.size() % 2 == 1) return values[mid];
  return 0.5 * (values[mid - 1] + values[mid]);
}

double median_abs_deviation(std::vector<double> values, double center) {
  for (double& value : values) value = std::abs(value - center);
  return median(std::move(values));
}

void Registry::add(std::string suite, std::string name,
                   std::function<void(std::uint64_t)> run) {
  REJUV_EXPECT(!suite.empty() && !name.empty(), "benchmark suite and name must be non-empty");
  REJUV_EXPECT(static_cast<bool>(run), "benchmark body must be callable");
  for (const Benchmark& existing : benchmarks_) {
    REJUV_EXPECT(existing.name != name, "duplicate benchmark name: " + name);
  }
  benchmarks_.push_back({std::move(suite), std::move(name), std::move(run)});
}

std::vector<std::string> Registry::suites() const {
  std::vector<std::string> names;
  for (const Benchmark& benchmark : benchmarks_) {
    if (std::find(names.begin(), names.end(), benchmark.suite) == names.end()) {
      names.push_back(benchmark.suite);
    }
  }
  return names;
}

BenchResult run_benchmark(const Benchmark& benchmark, const BenchOptions& options) {
  REJUV_EXPECT(options.repetitions >= 1, "at least one timed repetition is required");

  // Calibrate the per-repetition iteration count until one repetition takes
  // at least min_rep_seconds. The calibration runs double as cache warmup.
  std::uint64_t iterations = 1;
  for (;;) {
    const double elapsed = time_once(benchmark.run, iterations);
    if (elapsed >= options.min_rep_seconds) break;
    if (iterations >= (std::uint64_t{1} << 40)) break;  // pathological no-op body
    // Aim 40% past the target so one growth step usually suffices, but at
    // least double to make progress when the clock resolution dominates.
    std::uint64_t next = iterations * 2;
    if (elapsed > 0.0) {
      const double scaled =
          static_cast<double>(iterations) * 1.4 * options.min_rep_seconds / elapsed;
      if (scaled > static_cast<double>(next)) next = static_cast<std::uint64_t>(scaled);
    }
    iterations = next;
  }

  for (int i = 0; i < options.warmup_repetitions; ++i) {
    (void)time_once(benchmark.run, iterations);
  }

  std::vector<double> per_op_ns;
  per_op_ns.reserve(static_cast<std::size_t>(options.repetitions));
  for (int i = 0; i < options.repetitions; ++i) {
    const double elapsed = time_once(benchmark.run, iterations);
    per_op_ns.push_back(elapsed * 1e9 / static_cast<double>(iterations));
  }

  BenchResult result;
  result.suite = benchmark.suite;
  result.name = benchmark.name;
  result.median_ns = median(per_op_ns);
  result.mad_ns = median_abs_deviation(per_op_ns, result.median_ns);
  result.min_ns = *std::min_element(per_op_ns.begin(), per_op_ns.end());
  result.max_ns = *std::max_element(per_op_ns.begin(), per_op_ns.end());
  double sum = 0.0;
  for (const double ns : per_op_ns) sum += ns;
  result.mean_ns = sum / static_cast<double>(per_op_ns.size());
  result.ops_per_second = result.median_ns > 0.0 ? 1e9 / result.median_ns : 0.0;
  result.iterations = iterations;
  result.repetitions = options.repetitions;
  return result;
}

std::vector<BenchResult> Registry::run(const BenchOptions& options, const std::string& suite,
                                       const std::string& filter,
                                       std::ostream* progress) const {
  std::vector<BenchResult> results;
  for (const Benchmark& benchmark : benchmarks_) {
    if (suite != "all" && benchmark.suite != suite) continue;
    if (!filter.empty() && benchmark.name.find(filter) == std::string::npos) continue;
    BenchResult result = run_benchmark(benchmark, options);
    if (progress != nullptr) {
      *progress << "  " << result.name << ": " << format_double(result.median_ns)
                << " ns/op (mad " << format_double(result.mad_ns) << ")\n";
    }
    results.push_back(std::move(result));
  }
  return results;
}

void write_json(std::ostream& out, const RunMetadata& metadata,
                const std::vector<BenchResult>& results) {
  out << "{\n";
  out << "  \"schema\": \"rejuv-bench/1\",\n";
  out << "  \"git_sha\": \"" << escape(metadata.git_sha) << "\",\n";
  out << "  \"mode\": \"" << escape(metadata.mode) << "\",\n";
  out << "  \"repetitions\": " << metadata.repetitions << ",\n";
  out << "  \"min_rep_seconds\": " << format_double(metadata.min_rep_seconds) << ",\n";
  out << "  \"benchmarks\": [\n";
  for (std::size_t i = 0; i < results.size(); ++i) {
    const BenchResult& r = results[i];
    out << "    {\"suite\": \"" << escape(r.suite) << "\", \"name\": \"" << escape(r.name)
        << "\", \"median_ns\": " << format_double(r.median_ns)
        << ", \"mad_ns\": " << format_double(r.mad_ns)
        << ", \"mean_ns\": " << format_double(r.mean_ns)
        << ", \"min_ns\": " << format_double(r.min_ns)
        << ", \"max_ns\": " << format_double(r.max_ns)
        << ", \"ops_per_second\": " << format_double(r.ops_per_second)
        << ", \"iterations\": " << r.iterations << ", \"repetitions\": " << r.repetitions
        << "}" << (i + 1 < results.size() ? "," : "") << "\n";
  }
  out << "  ]\n";
  out << "}\n";
}

namespace {

/// Minimal recursive-descent JSON reader covering exactly the write_json
/// schema (objects, arrays, strings, numbers, booleans, null). Kept private:
/// benchlib only ever parses documents benchlib wrote.
class JsonScanner {
 public:
  explicit JsonScanner(std::string_view text) : text_(text) {}

  bool parse_document(BaselineFile& out) {
    skip_ws();
    if (!parse_object_into(out, /*depth=*/0)) return false;
    skip_ws();
    return pos_ == text_.size();
  }

 private:
  // Parses one object. At depth 0 it captures git_sha; inside the
  // "benchmarks" array (depth 1) it captures name/median_ns pairs.
  bool parse_object_into(BaselineFile& out, int depth) {
    if (!consume('{')) return false;
    skip_ws();
    if (consume('}')) return true;
    std::string entry_name;
    double entry_median = -1.0;
    for (;;) {
      std::string key;
      if (!parse_string(key)) return false;
      skip_ws();
      if (!consume(':')) return false;
      skip_ws();
      if (depth == 0 && key == "benchmarks") {
        if (!parse_benchmark_array(out)) return false;
      } else if (depth == 0 && key == "git_sha") {
        if (!parse_string(out.git_sha)) return false;
      } else if (depth == 1 && key == "name") {
        if (!parse_string(entry_name)) return false;
      } else if (depth == 1 && key == "median_ns") {
        if (!parse_number(entry_median)) return false;
      } else {
        if (!skip_value()) return false;
      }
      skip_ws();
      if (consume(',')) {
        skip_ws();
        continue;
      }
      break;
    }
    if (!consume('}')) return false;
    if (depth == 1 && !entry_name.empty() && entry_median >= 0.0) {
      out.median_ns[entry_name] = entry_median;
    }
    return true;
  }

  bool parse_benchmark_array(BaselineFile& out) {
    if (!consume('[')) return false;
    skip_ws();
    if (consume(']')) return true;
    for (;;) {
      if (!parse_object_into(out, /*depth=*/1)) return false;
      skip_ws();
      if (consume(',')) {
        skip_ws();
        continue;
      }
      break;
    }
    return consume(']');
  }

  bool parse_string(std::string& out) {
    skip_ws();
    if (!consume('"')) return false;
    out.clear();
    while (pos_ < text_.size()) {
      const char c = text_[pos_++];
      if (c == '"') return true;
      if (c == '\\') {
        if (pos_ >= text_.size()) return false;
        const char esc = text_[pos_++];
        switch (esc) {
          case '"': out += '"'; break;
          case '\\': out += '\\'; break;
          case '/': out += '/'; break;
          case 'n': out += '\n'; break;
          case 'r': out += '\r'; break;
          case 't': out += '\t'; break;
          default: return false;  // \b, \f, \uXXXX never written by write_json
        }
      } else {
        out += c;
      }
    }
    return false;
  }

  bool parse_number(double& out) {
    const std::size_t start = pos_;
    while (pos_ < text_.size() &&
           (std::isdigit(static_cast<unsigned char>(text_[pos_])) || text_[pos_] == '-' ||
            text_[pos_] == '+' || text_[pos_] == '.' || text_[pos_] == 'e' ||
            text_[pos_] == 'E')) {
      ++pos_;
    }
    if (pos_ == start) return false;
    const auto [end, ec] = std::from_chars(text_.data() + start, text_.data() + pos_, out);
    return ec == std::errc() && end == text_.data() + pos_;
  }

  bool skip_value() {
    skip_ws();
    if (pos_ >= text_.size()) return false;
    const char c = text_[pos_];
    if (c == '"') {
      std::string ignored;
      return parse_string(ignored);
    }
    if (c == '{' || c == '[') {
      // Structural skip: count nesting, honoring strings.
      int depth = 0;
      bool in_string = false;
      while (pos_ < text_.size()) {
        const char cur = text_[pos_++];
        if (in_string) {
          if (cur == '\\') {
            if (pos_ < text_.size()) ++pos_;
          } else if (cur == '"') {
            in_string = false;
          }
          continue;
        }
        if (cur == '"') in_string = true;
        if (cur == '{' || cur == '[') ++depth;
        if (cur == '}' || cur == ']') {
          --depth;
          if (depth == 0) return true;
        }
      }
      return false;
    }
    if (text_.compare(pos_, 4, "true") == 0) return pos_ += 4, true;
    if (text_.compare(pos_, 5, "false") == 0) return pos_ += 5, true;
    if (text_.compare(pos_, 4, "null") == 0) return pos_ += 4, true;
    double ignored = 0.0;
    return parse_number(ignored);
  }

  void skip_ws() {
    while (pos_ < text_.size() && std::isspace(static_cast<unsigned char>(text_[pos_]))) ++pos_;
  }

  bool consume(char expected) {
    if (pos_ < text_.size() && text_[pos_] == expected) {
      ++pos_;
      return true;
    }
    return false;
  }

  std::string_view text_;
  std::size_t pos_ = 0;
};

}  // namespace

std::optional<BaselineFile> parse_bench_json(const std::string& text) {
  BaselineFile baseline;
  JsonScanner scanner(text);
  if (!scanner.parse_document(baseline)) return std::nullopt;
  return baseline;
}

BaselineFile read_baseline_file(const std::string& path) {
  std::ifstream in(path);
  REJUV_EXPECT(in.is_open(), "cannot open baseline file: " + path);
  std::ostringstream buffer;
  buffer << in.rdbuf();
  auto baseline = parse_bench_json(buffer.str());
  REJUV_EXPECT(baseline.has_value(), "baseline file is not valid BENCH.json: " + path);
  return *std::move(baseline);
}

CompareReport compare_to_baseline(const std::vector<BenchResult>& results,
                                  const BaselineFile& baseline, double max_ratio) {
  REJUV_EXPECT(max_ratio > 0.0, "gate ratio must be positive");
  CompareReport report;
  for (const BenchResult& result : results) {
    const auto it = baseline.median_ns.find(result.name);
    if (it == baseline.median_ns.end() || it->second <= 0.0) {
      report.missing_in_baseline.push_back(result.name);
      continue;
    }
    const double ratio = result.median_ns / it->second;
    if (ratio > max_ratio) {
      report.regressions.push_back({result.name, it->second, result.median_ns, ratio});
    } else if (ratio < 1.0 / max_ratio) {
      report.improved.push_back(result.name);
    }
  }
  return report;
}

}  // namespace rejuv::benchlib
