#include "benchlib/suites.h"

#include <arpa/inet.h>
#include <netinet/in.h>
#include <sys/socket.h>
#include <unistd.h>

#include <atomic>
#include <chrono>
#include <memory>
#include <span>
#include <sstream>
#include <thread>
#include <vector>

#include "cluster/cluster.h"
#include "common/rng.h"
#include "core/bank.h"
#include "core/bucket_cascade.h"
#include "exec/pool.h"
#include "exec/work_stealing_deque.h"
#include "core/clta.h"
#include "core/factory.h"
#include "core/spec.h"
#include "core/saraa.h"
#include "core/sraa.h"
#include "core/static_rejuvenation.h"
#include "monitor/checkpoint.h"
#include "monitor/fleet.h"
#include "monitor/spsc_queue.h"
#include "monitor/stream_table.h"
#include "monitor/wire.h"
#include "obs/sink.h"
#include "obs/tracer.h"
#include "sim/event_queue.h"

namespace rejuv::benchlib {

namespace {

using namespace rejuv;
namespace wire = monitor::wire;

constexpr std::size_t kDataSize = 1 << 14;  // power of two: index is a mask
constexpr std::size_t kDataMask = kDataSize - 1;
constexpr std::size_t kBatch = 512;  // monitor-like drain batch

/// Deterministic response-time-like stream around the paper's (5, 5)
/// baseline: uniform in [0, 10], so bucket-0 exceedance probability is ~0.5
/// and the cascade genuinely wanders (the steady-state mix of escalations,
/// de-escalations and occasional triggers a live detector sees).
std::shared_ptr<std::vector<double>> make_observations() {
  auto data = std::make_shared<std::vector<double>>(kDataSize);
  common::RngStream rng(0xB3'5EED, 0);
  for (double& value : *data) value = 10.0 * rng.uniform01();
  return data;
}

/// Feeds `count` observations one at a time.
void feed_observe(core::Detector& detector, const std::vector<double>& data,
                  std::uint64_t count) {
  std::uint64_t triggers = 0;
  for (std::uint64_t i = 0; i < count; ++i) {
    triggers += detector.observe(data[i & kDataMask]) == core::Decision::kRejuvenate ? 1u : 0u;
  }
  do_not_optimize(triggers);
}

/// Feeds `count` observations through observe_all in kBatch-sized spans,
/// resuming past triggers exactly as the monitor's drain loop does.
void feed_observe_all(core::Detector& detector, const std::vector<double>& data,
                      std::uint64_t count) {
  std::uint64_t triggers = 0;
  std::uint64_t done = 0;
  std::size_t offset = 0;
  while (done < count) {
    const std::size_t len =
        count - done < kBatch ? static_cast<std::size_t>(count - done) : kBatch;
    std::span<const double> batch(data.data() + offset, len);
    while (!batch.empty()) {
      const std::size_t index = detector.observe_all(batch);
      if (index == batch.size()) break;
      ++triggers;
      batch = batch.subspan(index + 1);
    }
    done += len;
    offset = (offset + len) & kDataMask;
  }
  do_not_optimize(triggers);
}

void register_detector_suite(Registry& registry) {
  const auto data = make_observations();
  const core::Baseline baseline{5.0, 5.0};

  const auto sraa = std::make_shared<core::Sraa>(core::SraaParams{2, 5, 3}, baseline);
  registry.add("detector", "detector.sraa.observe",
               [data, sraa](std::uint64_t n) { feed_observe(*sraa, *data, n); });
  const auto sraa_batch = std::make_shared<core::Sraa>(core::SraaParams{2, 5, 3}, baseline);
  registry.add("detector", "detector.sraa.observe_all",
               [data, sraa_batch](std::uint64_t n) { feed_observe_all(*sraa_batch, *data, n); });

  const auto saraa = std::make_shared<core::Saraa>(core::SaraaParams{2, 5, 3, true}, baseline);
  registry.add("detector", "detector.saraa.observe",
               [data, saraa](std::uint64_t n) { feed_observe(*saraa, *data, n); });
  const auto saraa_batch =
      std::make_shared<core::Saraa>(core::SaraaParams{2, 5, 3, true}, baseline);
  registry.add("detector", "detector.saraa.observe_all", [data, saraa_batch](std::uint64_t n) {
    feed_observe_all(*saraa_batch, *data, n);
  });

  const auto clta = std::make_shared<core::Clta>(core::CltaParams{30, 1.96}, baseline);
  registry.add("detector", "detector.clta.observe",
               [data, clta](std::uint64_t n) { feed_observe(*clta, *data, n); });
  const auto clta_batch = std::make_shared<core::Clta>(core::CltaParams{30, 1.96}, baseline);
  registry.add("detector", "detector.clta.observe_all",
               [data, clta_batch](std::uint64_t n) { feed_observe_all(*clta_batch, *data, n); });

  const auto static_det = std::make_shared<core::StaticRejuvenation>(5, 3, baseline);
  registry.add("detector", "detector.static.observe",
               [data, static_det](std::uint64_t n) { feed_observe(*static_det, *data, n); });

  // The related-work families, built through the registry exactly as the
  // tools build them (spec string -> make_detector), at their default knobs.
  const struct {
    const char* key;
    const char* spec;
  } related[] = {
      {"detector.adaptive.observe", "Adaptive(n=2,K=5,D=3,w=30,t=2,h=6)"},
      {"detector.ediv.observe", "EDiv(b=10,w=30,q=10,g=5)"},
      {"detector.entropy.observe", "Entropy(w=50,m=10,c=4,t=0.15,r=2)"},
      {"detector.mk.observe", "MK(w=30,z=1.645,s=0,L=3)"},
  };
  for (const auto& entry : related) {
    const std::shared_ptr<core::Detector> detector = core::make_detector(core::parse_spec(entry.spec));
    registry.add("detector", entry.key,
                 [data, detector](std::uint64_t n) { feed_observe(*detector, *data, n); });
  }

  const auto cascade = std::make_shared<core::BucketCascade>(3, 5);
  registry.add("detector", "detector.cascade.update", [data, cascade](std::uint64_t n) {
    std::uint64_t transitions = 0;
    for (std::uint64_t i = 0; i < n; ++i) {
      transitions += cascade->update((*data)[i & kDataMask] > 5.0) !=
                             core::BucketCascade::Transition::kNone
                         ? 1u
                         : 0u;
    }
    do_not_optimize(transitions);
  });
}

void register_bank_suite(Registry& registry) {
  // Fleet-scale detection: 1024 detectors of one family advanced in
  // lockstep, one observation per lane per row. `rows_1024` is the SoA
  // bank's vectorized row kernel (docs/BANKS.md); `scalar_1024` is the same
  // work as 1024 independent scalar detectors behind virtual observe()
  // calls — the bank's speedup is the ratio of the two. Both feeds visit
  // the identical (lane, value) sequence, cycling through the same
  // deterministic 16-row block, so the ratio compares code paths, not data.
  //
  // The stream is the fleet steady state: mostly healthy values below the
  // (5, 5) baseline's level-0 target with a 3% sprinkle of degraded ones,
  // so cascades mostly idle and occasionally climb — not the detector
  // suite's 50%-exceedance churn, where both paths spend their time in the
  // same retargeting code and the comparison measures neither.
  const auto data = std::make_shared<std::vector<double>>(kDataSize);
  {
    common::RngStream rng(0xBA'2BEA7, 1);
    for (double& value : *data) {
      value = rng.uniform01() < 0.03 ? 5.0 + 20.0 * rng.uniform01() : 4.5 * rng.uniform01();
    }
  }
  constexpr std::size_t kLanes = 1024;
  constexpr std::size_t kBlockRows = kDataSize / kLanes;

  const struct {
    const char* key;
    const char* spec;
  } families[] = {
      {"static", "Static(K=5,D=3,mu=5,sigma=5)"},
      {"sraa", "SRAA(n=2,K=5,D=3,mu=5,sigma=5)"},
      {"saraa", "SARAA(n=2,K=5,D=3,mu=5,sigma=5)"},
      {"clta", "CLTA(n=30,z=1.96,mu=5,sigma=5)"},
  };
  for (const auto& entry : families) {
    const core::DetectorConfig config = core::parse_spec(entry.spec);

    auto bank = std::make_shared<core::DetectorBank>(config.family());
    for (std::size_t lane = 0; lane < kLanes; ++lane) bank->add_lane(config);
    bank->reserve_triggers(kDataSize);
    registry.add("bank", std::string("bank.") + entry.key + ".rows_1024",
                 [data, bank](std::uint64_t n) {
                   std::uint64_t triggers = 0;
                   std::uint64_t done = 0;
                   while (done < n) {
                     const std::uint64_t want_rows = (n - done + kLanes - 1) / kLanes;
                     const std::size_t rows =
                         want_rows < kBlockRows ? static_cast<std::size_t>(want_rows)
                                                : kBlockRows;
                     bank->observe_rows(std::span<const double>(data->data(), rows * kLanes));
                     triggers += bank->triggers().size();
                     bank->clear_triggers();
                     done += rows * kLanes;
                   }
                   do_not_optimize(triggers);
                 });

    auto scalars = std::make_shared<std::vector<std::unique_ptr<core::Detector>>>();
    scalars->reserve(kLanes);
    for (std::size_t lane = 0; lane < kLanes; ++lane) {
      scalars->push_back(core::make_detector(config));
    }
    registry.add("bank", std::string("bank.") + entry.key + ".scalar_1024",
                 [data, scalars](std::uint64_t n) {
                   std::uint64_t triggers = 0;
                   std::uint64_t done = 0;
                   while (done < n) {
                     const std::uint64_t want_rows = (n - done + kLanes - 1) / kLanes;
                     const std::size_t rows =
                         want_rows < kBlockRows ? static_cast<std::size_t>(want_rows)
                                                : kBlockRows;
                     for (std::size_t r = 0; r < rows; ++r) {
                       const double* row = data->data() + r * kLanes;
                       for (std::size_t lane = 0; lane < kLanes; ++lane) {
                         triggers += (*scalars)[lane]->observe(row[lane]) ==
                                             core::Decision::kRejuvenate
                                         ? 1u
                                         : 0u;
                       }
                     }
                     done += rows * kLanes;
                   }
                   do_not_optimize(triggers);
                 });
  }
}

void register_sim_suite(Registry& registry) {
  const auto data = make_observations();

  // Steady-state future-event list at ~1024 pending events: each operation
  // pops the earliest event and schedules a replacement a random offset
  // ahead, which is exactly the completion-event churn of the §3 model.
  const auto queue = std::make_shared<sim::EventQueue>();
  registry.add("sim", "sim.event_queue.push_pop", [data, queue](std::uint64_t n) {
    if (queue->empty()) {
      for (std::size_t i = 0; i < 1024; ++i) {
        queue->push((*data)[i & kDataMask], [] {});
      }
    }
    double credit = 0.0;
    for (std::uint64_t i = 0; i < n; ++i) {
      auto [time, action] = queue->pop();
      credit = time;
      queue->push(time + (*data)[i & kDataMask] + 1e-3, std::move(action));
    }
    do_not_optimize(credit);
  });

  // Schedule + cancel: the GC-postpone and rejuvenation-flush paths cancel
  // live events, so true-removal cost matters as much as pop.
  const auto cancel_queue = std::make_shared<sim::EventQueue>();
  registry.add("sim", "sim.event_queue.schedule_cancel",
               [data, cancel_queue](std::uint64_t n) {
                 if (cancel_queue->empty()) {
                   for (std::size_t i = 0; i < 1024; ++i) {
                     cancel_queue->push((*data)[i & kDataMask], [] {});
                   }
                 }
                 std::uint64_t cancelled = 0;
                 for (std::uint64_t i = 0; i < n; ++i) {
                   const sim::EventId id =
                       cancel_queue->push((*data)[i & kDataMask] + 10.0, [] {});
                   cancelled += cancel_queue->cancel(id) ? 1u : 0u;
                 }
                 do_not_optimize(cancelled);
               });
}

void register_event_queue_suite(Registry& registry) {
  const auto data = make_observations();

  // Steady-state churn at depth 4096 — the regime a heavily loaded sweep
  // point runs in (one completion event per busy CPU plus GC/rejuvenation
  // timers). Pop-earliest + schedule-replacement is the per-event cost the
  // simulator pays millions of times per replication.
  const auto deep = std::make_shared<sim::EventQueue>();
  registry.add("event_queue", "event_queue.push_pop_4096", [data, deep](std::uint64_t n) {
    if (deep->empty()) {
      for (std::size_t i = 0; i < 4096; ++i) {
        deep->push((*data)[i & kDataMask], [] {});
      }
    }
    double credit = 0.0;
    for (std::uint64_t i = 0; i < n; ++i) {
      auto [time, action] = deep->pop();
      credit = time;
      deep->push(time + (*data)[i & kDataMask] + 1e-3, std::move(action));
    }
    do_not_optimize(credit);
  });

  // Reschedule: cancel a live mid-heap event and push its replacement — the
  // GC-postpone pattern. Unlike schedule_cancel (which cancels the event it
  // just pushed), this removes from arbitrary heap positions, exercising
  // both sift directions of the removal path.
  struct RescheduleFixture {
    sim::EventQueue queue;
    std::vector<sim::EventId> live;
    double now = 0.0;
  };
  const auto resched = std::make_shared<RescheduleFixture>();
  registry.add("event_queue", "event_queue.reschedule", [data, resched](std::uint64_t n) {
    constexpr std::size_t kLive = 1024;
    if (resched->live.empty()) {
      resched->live.reserve(kLive);
      for (std::size_t i = 0; i < kLive; ++i) {
        resched->live.push_back(resched->queue.push((*data)[i & kDataMask], [] {}));
      }
    }
    std::uint64_t cancelled = 0;
    for (std::uint64_t i = 0; i < n; ++i) {
      sim::EventId& slot = resched->live[i % kLive];
      cancelled += resched->queue.cancel(slot) ? 1u : 0u;
      resched->now += 1e-3;
      slot = resched->queue.push(resched->now + (*data)[i & kDataMask], [] {});
    }
    do_not_optimize(cancelled);
  });

  // Fill-then-drain from empty: amortized cost of one push plus one pop over
  // a full 4096-event cycle — the startup/flush transient (rejuvenation
  // drops every pending completion, then the queue refills).
  const auto drain = std::make_shared<sim::EventQueue>();
  registry.add("event_queue", "event_queue.fill_drain", [data, drain](std::uint64_t n) {
    double credit = 0.0;
    for (std::uint64_t i = 0; i < n; ++i) {
      drain->push((*data)[i & kDataMask], [] {});
      if (drain->size() == 4096) {
        while (!drain->empty()) credit = drain->pop().first;
      }
    }
    while (!drain->empty()) credit = drain->pop().first;
    do_not_optimize(credit);
  });
}

void register_exec_suite(Registry& registry) {
  // Owner-side deque ops with no contention: the floor for task bookkeeping
  // on the pool's hot path (every spawned task is one push + one pop).
  const auto deque = std::make_shared<exec::WorkStealingDeque<std::uint64_t>>();
  registry.add("exec", "exec.deque.push_pop", [deque](std::uint64_t n) {
    std::uint64_t sum = 0;
    for (std::uint64_t i = 0; i < n; ++i) {
      deque->push(i);
      sum += deque->pop().value_or(0);
    }
    do_not_optimize(sum);
  });

  // Per-task dispatch + join overhead through a TaskGroup on a live pool:
  // what one (point × replication) work item costs before any simulation
  // work happens. Submitted in kBatch-sized groups so wait() runs at
  // realistic fan-out, not once per task.
  const auto pool = std::make_shared<exec::ThreadPool>(exec::ThreadPool::default_thread_count());
  registry.add("exec", "exec.pool.dispatch", [pool](std::uint64_t n) {
    std::atomic<std::uint64_t> count{0};
    std::uint64_t submitted = 0;
    while (submitted < n) {
      const std::uint64_t batch = n - submitted < kBatch ? n - submitted : kBatch;
      exec::TaskGroup group(*pool);
      for (std::uint64_t i = 0; i < batch; ++i) {
        group.run([&count] { count.fetch_add(1, std::memory_order_relaxed); });
      }
      group.wait();
      submitted += batch;
    }
    do_not_optimize(count.load());
  });

  // parallel_map fan-out per index, including the ordered result buffer the
  // harness's bit-identity guarantee rides on.
  registry.add("exec", "exec.parallel_map.fanout", [pool](std::uint64_t n) {
    std::uint64_t checksum = 0;
    std::uint64_t mapped = 0;
    while (mapped < n) {
      const std::size_t batch =
          n - mapped < kBatch ? static_cast<std::size_t>(n - mapped) : kBatch;
      const std::vector<std::uint64_t> results = exec::parallel_map<std::uint64_t>(
          *pool, batch, [](std::size_t i) { return static_cast<std::uint64_t>(i); });
      checksum += results.back();
      mapped += batch;
    }
    do_not_optimize(checksum);
  });
}

void register_monitor_suite(Registry& registry) {
  const auto data = make_observations();

  // Single-threaded ping-pong over the SPSC ring: measures the queue's
  // per-element cost (index math, the release/acquire pair) without
  // cross-core noise; one operation = one push, pops amortized per batch.
  struct SpscFixture {
    monitor::SpscQueue<double> queue{4096};
    std::vector<double> drain = std::vector<double>(kBatch);
    std::size_t pending = 0;
  };
  const auto spsc = std::make_shared<SpscFixture>();
  registry.add("monitor", "monitor.spsc.push_pop", [data, spsc](std::uint64_t n) {
    std::uint64_t popped = 0;
    for (std::uint64_t i = 0; i < n; ++i) {
      (void)spsc->queue.try_push((*data)[i & kDataMask]);
      if (++spsc->pending == kBatch) {
        popped += spsc->queue.pop_batch(spsc->drain.data(), kBatch);
        spsc->pending = 0;
      }
    }
    do_not_optimize(popped);
  });

  // One full checkpoint record: serialize a mid-escalation SRAA controller
  // state to its JSONL line and parse it back — the per-interval cost of
  // --checkpoint-every.
  const auto checkpoint = std::make_shared<monitor::ShardCheckpoint>([] {
    monitor::ShardCheckpoint record;
    record.spec = "SRAA(n=2,K=5,D=3)";
    record.shard = 1;
    record.shard_count = 4;
    record.controller.observations = 123456;
    record.controller.cooldown_remaining = 17;
    record.controller.trigger_indices = {1000, 2000, 40000, 100000};
    record.controller.detector.algorithm = "SRAA(n=2,K=5,D=3)";
    record.controller.detector.has_cascade = true;
    record.controller.detector.bucket = 3;
    record.controller.detector.fill = 2;
    record.controller.detector.has_window = true;
    record.controller.detector.window_length = 2;
    record.controller.detector.window_next = 2;
    record.controller.detector.window_count = 1;
    record.controller.detector.window_sum = 7.25;
    record.controller.detector.last_average = 11.5;
    return record;
  }());
  registry.add("monitor", "monitor.checkpoint.roundtrip", [checkpoint](std::uint64_t n) {
    std::uint64_t parsed_obs = 0;
    for (std::uint64_t i = 0; i < n; ++i) {
      const std::string line = monitor::to_json(*checkpoint);
      const auto parsed = monitor::parse_checkpoint_line(line);
      parsed_obs += parsed ? parsed->controller.observations : 0;
    }
    do_not_optimize(parsed_obs);
  });
}

void register_cluster_suite(Registry& registry) {
  // Coordinator bookkeeping on the per-completed-transaction path: the
  // false-trigger ordinal advance every cluster host pays per transaction.
  struct NoteFixture {
    sim::Simulator simulator;
    cluster::Coordinator coordinator{simulator,
                                     [] {
                                       cluster::CoordinatorConfig config;
                                       config.hosts = 4;
                                       return config;
                                     }(),
                                     faults::FaultPlan{}, 1, {}};
  };
  const auto note = std::make_shared<NoteFixture>();
  registry.add("cluster", "cluster.coordinator.note_transaction", [note](std::uint64_t n) {
    std::uint64_t fired = 0;
    for (std::uint64_t i = 0; i < n; ++i) {
      fired += note->coordinator.note_transaction(i & 3) ? 1u : 0u;
    }
    do_not_optimize(fired);
  });

  // Batch-amortized per-transaction cost of a full coordinated cluster run,
  // one entry per scheduling strategy (3 hosts, SRAA detectors, 5 s
  // restores). This is the end-to-end cost a rejuv-cluster sweep pays per
  // offered transaction, including routing, detection and coordination.
  constexpr std::uint64_t kClusterBatch = 2000;
  const auto run_batch = [](cluster::RejuvenationStrategy strategy,
                            std::uint64_t checkpoint_every, std::uint64_t iteration) {
    cluster::ClusterConfig config;
    config.hosts = 3;
    config.host_config.arrival_rate = 1.0;  // per-host default; total below rules
    config.host_config.rejuvenation_downtime_seconds = 5.0;
    config.total_arrival_rate = 6.4;
    config.strategy = strategy;
    config.checkpoint_every_observations = checkpoint_every;
    sim::Simulator simulator;
    cluster::Cluster cluster_run(
        simulator, config,
        [] {
          return core::make_detector(core::parse_spec("SRAA(n=2,K=5,D=3)"));
        },
        0xC1'05'7E + iteration);
    cluster_run.run_transactions(kClusterBatch);
    return cluster_run.metrics().completed;
  };
  const struct {
    const char* key;
    cluster::RejuvenationStrategy strategy;
    std::uint64_t checkpoint_every;
  } cluster_cases[] = {
      {"cluster.txn.rolling", cluster::RejuvenationStrategy::kRolling, 0},
      {"cluster.txn.simultaneous", cluster::RejuvenationStrategy::kSimultaneous, 0},
      {"cluster.txn.load_triggered", cluster::RejuvenationStrategy::kLoadTriggered, 0},
      {"cluster.txn.budget_aware", cluster::RejuvenationStrategy::kBudgetAware, 0},
      {"cluster.txn.rolling_checkpointed", cluster::RejuvenationStrategy::kRolling, 1},
  };
  for (const auto& entry : cluster_cases) {
    const auto strategy = entry.strategy;
    const auto checkpoint_every = entry.checkpoint_every;
    registry.add("cluster", entry.key,
                 [run_batch, strategy, checkpoint_every](std::uint64_t n) {
                   std::uint64_t completed = 0;
                   std::uint64_t iteration = 0;
                   for (std::uint64_t done = 0; done < n; done += kClusterBatch) {
                     completed += run_batch(strategy, checkpoint_every, iteration++);
                   }
                   do_not_optimize(completed);
                 });
  }
}

void register_obs_suite(Registry& registry) {
  // The disabled path is the branch every untraced simulation pays per
  // event; it must stay in the low single-digit nanoseconds.
  const auto disabled = std::make_shared<obs::Tracer>();
  registry.add("obs", "obs.tracer.disabled_emit", [disabled](std::uint64_t n) {
    for (std::uint64_t i = 0; i < n; ++i) {
      disabled->set_time(static_cast<double>(i));
      disabled->sample(10.0, 5.0, true, 2, 1, 4);
    }
    do_not_optimize(disabled->events_emitted());
  });

  // Full JSONL formatting + stream write per event (buffer recycled so the
  // benchmark measures formatting, not unbounded string growth).
  struct JsonlFixture {
    std::ostringstream out;
    std::unique_ptr<obs::JsonlSink> sink = std::make_unique<obs::JsonlSink>(out);
    obs::Tracer tracer{sink.get()};
  };
  const auto jsonl = std::make_shared<JsonlFixture>();
  registry.add("obs", "obs.tracer.jsonl_emit", [jsonl](std::uint64_t n) {
    for (std::uint64_t i = 0; i < n; ++i) {
      if ((i & 0xFFF) == 0) {
        jsonl->out.str("");
        jsonl->out.clear();
      }
      jsonl->tracer.set_time(static_cast<double>(i));
      jsonl->tracer.sample(10.0, 5.0, true, 2, 1, 4);
    }
    do_not_optimize(jsonl->tracer.events_emitted());
  });
}

// --- Ingestion suite helpers (fleet-scale wire + engine benchmarks) ---

/// Writes all of `bytes` to `fd`, returning false on the first failed write
/// (EPIPE when the fleet engine already shut the input down mid-repetition).
bool write_all(int fd, const char* data, std::size_t size) {
  std::size_t offset = 0;
  while (offset < size) {
    const ssize_t n = ::write(fd, data + offset, size - offset);
    if (n <= 0) return false;
    offset += static_cast<std::size_t>(n);
  }
  return true;
}

/// Pre-encoded frames for one round-robin sweep over `streams` stream ids,
/// shared by every fleet benchmark at that fleet width.
struct FleetRound {
  std::uint32_t streams;
  std::string frames;

  FleetRound(std::uint32_t stream_count, const std::vector<double>& data)
      : streams(stream_count) {
    frames.reserve(static_cast<std::size_t>(streams) * 15);
    for (std::uint32_t i = 0; i < streams; ++i) {
      wire::append_observation(frames, i, data[i & kDataMask]);
    }
  }

  /// Streams the preamble plus rounds until `target` observations are
  /// written (or the reader hangs up); closes `fd`.
  void feed(int fd, std::uint64_t target) const {
    std::string preamble;
    wire::append_preamble(preamble);
    std::uint64_t written = 0;
    if (write_all(fd, preamble.data(), preamble.size())) {
      while (written < target && write_all(fd, frames.data(), frames.size())) {
        written += streams;
      }
    }
    ::close(fd);
  }
};

monitor::FleetConfig fleet_bench_config(std::uint32_t streams, std::uint64_t n) {
  monitor::FleetConfig config;
  config.detector = core::DetectorConfig("SRAA").set("n", 2).set("K", 5).set("D", 3);
  config.listen = false;
  config.max_streams = streams;
  config.max_observations = n;
  config.idle_poll = std::chrono::milliseconds(5);
  return config;
}

/// One benchmark run of the full engine over pipes: spawn the writer(s),
/// run the engine until the observation budget `n` is consumed, tear down.
/// One operation = one observation decoded, routed and fed to its lane.
void run_fleet_pipes(const std::shared_ptr<FleetRound>& round, std::uint64_t n,
                     std::size_t pipes, std::size_t shards, bool inline_mode) {
  monitor::FleetConfig config = fleet_bench_config(round->streams, n);
  config.shards = shards;
  config.inline_processing = inline_mode;
  std::vector<std::thread> writers;
  for (std::size_t p = 0; p < pipes; ++p) {
    int fds[2] = {-1, -1};
    if (::pipe(fds) != 0) return;
    config.input_fds.push_back(fds[0]);
    writers.emplace_back(
        [round, fd = fds[1], target = n / pipes + round->streams] { round->feed(fd, target); });
  }
  monitor::FleetMonitor fleet(config);
  const monitor::FleetStats stats = fleet.run();
  for (std::thread& writer : writers) writer.join();
  do_not_optimize(stats.processed);
}

/// As run_fleet_pipes, but over loopback TCP connections against the fleet
/// listener — the acceptance-criterion configuration (binary protocol
/// unless `text`, in which case each connection is one legacy text stream).
void run_fleet_tcp(const std::shared_ptr<FleetRound>& round, std::uint64_t n,
                   std::size_t connections, std::size_t shards, bool text) {
  monitor::FleetConfig config = fleet_bench_config(round->streams, n);
  config.shards = shards;
  config.listen = true;
  config.port = 0;
  monitor::FleetMonitor fleet(config);
  const std::uint16_t port = fleet.port();
  std::vector<std::thread> clients;
  const std::uint64_t target = n / connections + round->streams;
  for (std::size_t c = 0; c < connections; ++c) {
    clients.emplace_back([round, port, target, text] {
      const int fd = ::socket(AF_INET, SOCK_STREAM, 0);
      if (fd < 0) return;
      sockaddr_in addr{};
      addr.sin_family = AF_INET;
      addr.sin_port = htons(port);
      addr.sin_addr.s_addr = htonl(INADDR_LOOPBACK);
      if (::connect(fd, reinterpret_cast<const sockaddr*>(&addr), sizeof(addr)) != 0) {
        ::close(fd);
        return;
      }
      if (text) {
        // One text connection = one stream: numbers, newline-terminated.
        std::string lines;
        for (int i = 0; i < 512; ++i) {
          lines += std::to_string(2.0 + 0.015625 * (i & 63));
          lines.push_back('\n');
        }
        std::uint64_t written = 0;
        while (written < target && write_all(fd, lines.data(), lines.size())) {
          written += 512;
        }
        ::close(fd);
      } else {
        round->feed(fd, target);
      }
    });
  }
  const monitor::FleetStats stats = fleet.run();
  for (std::thread& client : clients) client.join();
  do_not_optimize(stats.processed);
}

void register_ingestion_suite(Registry& registry) {
  const auto data = make_observations();

  // Raw binary frame decode: StreamDecoder::feed over recv-sized buffers,
  // amortized per record — the per-observation parse cost on the wire path.
  struct DecodeFixture {
    std::string frames;  ///< kBatch encoded observation frames
    wire::StreamDecoder decoder{wire::Protocol::kBinary};
    std::vector<wire::Record> out;
    std::size_t pending = 0;
  };
  const auto decode = std::make_shared<DecodeFixture>();
  {
    std::string preamble;
    wire::append_preamble(preamble);
    decode->decoder.feed(preamble.data(), preamble.size(), decode->out);
    for (std::size_t i = 0; i < kBatch; ++i) {
      wire::append_observation(decode->frames, static_cast<std::uint32_t>(i & 1023),
                               (*data)[i & kDataMask]);
    }
  }
  registry.add("ingestion", "ingestion.wire.decode", [decode](std::uint64_t n) {
    std::uint64_t records = 0;
    for (std::uint64_t i = 0; i < n; ++i) {
      if (++decode->pending == kBatch) {
        decode->out.clear();
        decode->decoder.feed(decode->frames.data(), decode->frames.size(), decode->out);
        records += decode->out.size();
        decode->pending = 0;
      }
    }
    do_not_optimize(records);
  });

  // The legacy text path over the same decoder: number + '\n' per record.
  // The decode-side half of the binary-vs-text ingestion ratio.
  struct TextFixture {
    std::string lines;
    wire::StreamDecoder decoder{wire::Protocol::kText, 1};
    std::vector<wire::Record> out;
    std::size_t pending = 0;
  };
  const auto text = std::make_shared<TextFixture>();
  for (std::size_t i = 0; i < kBatch; ++i) {
    text->lines += std::to_string((*data)[i & kDataMask]);
    text->lines.push_back('\n');
  }
  registry.add("ingestion", "ingestion.wire.text_parse", [text](std::uint64_t n) {
    std::uint64_t records = 0;
    for (std::uint64_t i = 0; i < n; ++i) {
      if (++text->pending == kBatch) {
        text->out.clear();
        text->decoder.feed(text->lines.data(), text->lines.size(), text->out);
        records += text->out.size();
        text->pending = 0;
      }
    }
    do_not_optimize(records);
  });

  // Hot-path stream interning: external wire id -> dense id for an already
  // resident fleet of 100k streams (the per-observation routing lookup).
  constexpr std::uint32_t kResident = 100000;
  struct TableFixture {
    monitor::StreamTable table{core::DetectorConfig("SRAA"), 8, kResident, 0};
    TableFixture() {
      bool created = false;
      for (std::uint32_t i = 0; i < kResident; ++i) {
        (void)table.acquire(i * 2654435761u + 3, created);
      }
    }
  };
  const auto lookup = std::make_shared<TableFixture>();
  registry.add("ingestion", "ingestion.stream_table.lookup", [lookup, kResident](std::uint64_t n) {
    std::uint64_t sum = 0;
    for (std::uint64_t i = 0; i < n; ++i) {
      const auto key = static_cast<std::uint32_t>(i % kResident);
      sum += lookup->table.find(key * 2654435761u + 3);
    }
    do_not_optimize(sum);
  });

  // End-to-end engine benchmarks. One operation = one observation through
  // decode -> stream table -> SPSC queue -> bank lane. ops_per_second is
  // the aggregate msgs/s the acceptance criterion quotes.
  const auto round_1k = std::make_shared<FleetRound>(1024, *data);
  const auto round_100k = std::make_shared<FleetRound>(100000, *data);

  registry.add("ingestion", "ingestion.fleet.inline_1k", [round_1k](std::uint64_t n) {
    run_fleet_pipes(round_1k, n, /*pipes=*/1, /*shards=*/1, /*inline_mode=*/true);
  });
  registry.add("ingestion", "ingestion.fleet.pipe_1k", [round_1k](std::uint64_t n) {
    run_fleet_pipes(round_1k, n, /*pipes=*/2, /*shards=*/2, /*inline_mode=*/false);
  });
  registry.add("ingestion", "ingestion.fleet.pipe_100k", [round_100k](std::uint64_t n) {
    run_fleet_pipes(round_100k, n, /*pipes=*/2, /*shards=*/4, /*inline_mode=*/false);
  });
  registry.add("ingestion", "ingestion.fleet.tcp_1k", [round_1k](std::uint64_t n) {
    run_fleet_tcp(round_1k, n, /*connections=*/4, /*shards=*/2, /*text=*/false);
  });
  // The blocking-era text protocol through the same engine (4 connections =
  // 4 streams; text frames carry no ids). Its ops/s against
  // ingestion.fleet.tcp_1k is the binary-vs-text speedup docs quote.
  registry.add("ingestion", "ingestion.fleet.tcp_text", [round_1k](std::uint64_t n) {
    run_fleet_tcp(round_1k, n, /*connections=*/4, /*shards=*/2, /*text=*/true);
  });
}

}  // namespace

void register_standard_suites(Registry& registry) {
  register_detector_suite(registry);
  register_bank_suite(registry);
  register_sim_suite(registry);
  register_event_queue_suite(registry);
  register_exec_suite(registry);
  register_monitor_suite(registry);
  register_cluster_suite(registry);
  register_obs_suite(registry);
  register_ingestion_suite(registry);
}

}  // namespace rejuv::benchlib
