#include "availability/huang_model.h"

#include <cmath>

#include "common/expect.h"
#include "markov/ctmc.h"
#include "markov/stationary.h"

namespace rejuv::availability {

void validate(const HuangParameters& params) {
  REJUV_EXPECT(params.aging_rate > 0.0, "aging rate must be positive");
  REJUV_EXPECT(params.failure_rate > 0.0, "failure rate must be positive");
  REJUV_EXPECT(params.repair_rate > 0.0, "repair rate must be positive");
  REJUV_EXPECT(params.rejuvenation_rate >= 0.0, "rejuvenation rate must be non-negative");
  REJUV_EXPECT(params.rejuvenation_restore_rate > 0.0, "restore rate must be positive");
  REJUV_EXPECT(params.failure_cost_weight > 0.0, "cost weight must be positive");
}

HuangSolution solve(const HuangParameters& params) {
  validate(params);
  const auto robust = static_cast<std::size_t>(State::kRobust);
  const auto degraded = static_cast<std::size_t>(State::kDegraded);
  const auto failed = static_cast<std::size_t>(State::kFailed);
  const auto rejuvenating = static_cast<std::size_t>(State::kRejuvenating);

  // With rejuvenation disabled the rejuvenating state is unreachable; solve
  // the three-state sub-chain to keep the generator irreducible.
  const bool with_rejuvenation = params.rejuvenation_rate > 0.0;
  markov::Ctmc chain(with_rejuvenation ? 4 : 3);
  chain.add_transition(robust, degraded, params.aging_rate);
  chain.add_transition(degraded, failed, params.failure_rate);
  chain.add_transition(failed, robust, params.repair_rate);
  if (with_rejuvenation) {
    chain.add_transition(degraded, rejuvenating, params.rejuvenation_rate);
    chain.add_transition(rejuvenating, robust, params.rejuvenation_restore_rate);
  }

  const auto pi = markov::stationary_distribution(chain);
  HuangSolution solution;
  for (std::size_t s = 0; s < pi.size(); ++s) solution.probability[s] = pi[s];
  solution.availability = solution.probability[robust] + solution.probability[degraded];
  solution.downtime_cost_rate =
      params.failure_cost_weight * solution.probability[failed] +
      (with_rejuvenation ? solution.probability[rejuvenating] : 0.0);
  solution.failure_frequency = solution.probability[degraded] * params.failure_rate;
  return solution;
}

double optimal_rejuvenation_rate(HuangParameters params, double max_rate) {
  REJUV_EXPECT(max_rate > 0.0, "search range must be positive");
  auto cost = [&params](double rate) {
    params.rejuvenation_rate = rate;
    return solve(params).downtime_cost_rate;
  };
  // Golden-section search on [0, max_rate].
  const double phi = (std::sqrt(5.0) - 1.0) / 2.0;
  double lo = 0.0;
  double hi = max_rate;
  double x1 = hi - phi * (hi - lo);
  double x2 = lo + phi * (hi - lo);
  double f1 = cost(x1);
  double f2 = cost(x2);
  for (int iter = 0; iter < 200 && hi - lo > 1e-10 * max_rate; ++iter) {
    if (f1 < f2) {
      hi = x2;
      x2 = x1;
      f2 = f1;
      x1 = hi - phi * (hi - lo);
      f1 = cost(x1);
    } else {
      lo = x1;
      x1 = x2;
      f1 = f2;
      x2 = lo + phi * (hi - lo);
      f2 = cost(x2);
    }
  }
  return 0.5 * (lo + hi);
}

HuangParameters parameters_for_measured(double rejuvenations_per_host_hour,
                                        double restore_seconds) {
  REJUV_EXPECT(rejuvenations_per_host_hour >= 0.0,
               "measured rejuvenation frequency must be non-negative");
  HuangParameters params;
  params.rejuvenation_rate = rejuvenations_per_host_hour;
  if (restore_seconds > 0.0) params.rejuvenation_restore_rate = 3600.0 / restore_seconds;
  return params;
}

bool rejuvenation_worthwhile(HuangParameters params, double max_rate) {
  REJUV_EXPECT(max_rate > 0.0, "search range must be positive");
  params.rejuvenation_rate = 0.0;
  const double without = solve(params).downtime_cost_rate;
  params.rejuvenation_rate = max_rate;
  const double aggressive = solve(params).downtime_cost_rate;
  return aggressive < without;
}

}  // namespace rejuv::availability
