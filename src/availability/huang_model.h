// The classic four-state rejuvenation availability model of Huang, Kintala,
// Kolettis & Fulton (FTCS 1995) — reference [9] of the paper.
//
// A continuously running system starts *robust*, ages into a *degraded*
// (failure-probable) state at rate r2, and from there crashes at rate
// lambda_f into *failed* (repair rate r1). Time-based rejuvenation sends the
// degraded system to a *rejuvenating* state at rate r4 (the inverse of the
// rejuvenation interval) from which it returns to robust at rate r3.
// Rejuvenation downtime is short and scheduled; failure downtime is long and
// unscheduled. This module solves the CTMC exactly (via the stationary
// solver) for steady-state availability and an expected downtime-cost rate.
// A structural property of the fully exponential chain: the cost rate is
// *monotone* in the rejuvenation rate (the rejuvenation time the system can
// accumulate is capped by the aging rate, while the failure exposure shrinks
// with every increase), so the optimal policy is binary — rejuvenate as
// aggressively as the restore path allows, or not at all — decided by the
// cost weights. The paper's measurement-driven detectors refine exactly
// this: they approximate "rejuvenate immediately upon degradation" without
// knowing the aging rate.
#pragma once

#include <cstddef>

namespace rejuv::availability {

/// States of the Huang et al. CTMC.
enum class State : std::size_t {
  kRobust = 0,
  kDegraded = 1,
  kFailed = 2,
  kRejuvenating = 3,
};

struct HuangParameters {
  double aging_rate = 1.0 / 240.0;          ///< r2: robust -> degraded (per hour)
  double failure_rate = 1.0 / 2160.0;       ///< lambda_f: degraded -> failed
  double repair_rate = 1.0 / 2.0;           ///< r1: failed -> robust (unscheduled)
  double rejuvenation_rate = 0.0;           ///< r4: degraded -> rejuvenating (policy knob)
  double rejuvenation_restore_rate = 6.0;   ///< r3: rejuvenating -> robust (scheduled)
  /// Relative cost of one hour of unscheduled (failure) downtime; scheduled
  /// rejuvenation downtime costs 1 per hour.
  double failure_cost_weight = 50.0;
};

void validate(const HuangParameters& params);

struct HuangSolution {
  double probability[4] = {0.0, 0.0, 0.0, 0.0};  ///< steady state, by State
  double availability = 0.0;       ///< P(robust) + P(degraded)
  double downtime_cost_rate = 0.0; ///< weighted downtime probability per hour
  double failure_frequency = 0.0;  ///< crashes per hour
};

/// Solves the CTMC exactly for the given parameters.
HuangSolution solve(const HuangParameters& params);

/// Finds the rejuvenation rate in [0, max_rate] minimizing the downtime cost
/// rate (golden-section search; the cost is monotone in the rate, so this
/// converges to whichever boundary the cost weights favour).
double optimal_rejuvenation_rate(HuangParameters params, double max_rate = 10.0);

/// True when aggressive rejuvenation lowers the downtime cost rate relative
/// to no rejuvenation at all — the binary policy decision this chain admits.
bool rejuvenation_worthwhile(HuangParameters params, double max_rate = 10.0);

/// Maps a *measured* rejuvenation policy onto the chain: the default
/// parameters with r4 set to the observed per-host rejuvenation frequency
/// (rejuvenations per host-hour) and r3 set from the observed restore
/// duration (3600 / restore_seconds; restore_seconds <= 0 keeps the default
/// restore rate). Used by the cluster sweep to price each strategy's
/// schedule with the Huang downtime-cost model.
HuangParameters parameters_for_measured(double rejuvenations_per_host_hour,
                                        double restore_seconds);

}  // namespace rejuv::availability
