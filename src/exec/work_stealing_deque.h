// Chase–Lev work-stealing deque.
//
// Single-owner LIFO at the bottom (push/pop by the worker that owns the
// deque), multi-thief FIFO at the top (steal by any other thread). This is
// the queue discipline that makes fork/join fan-out cache-friendly: the
// owner runs its freshest (hottest) task while thieves drain the oldest
// ones, and an idle worker imposes zero cost on a busy one.
//
// Implementation notes:
//   * The algorithm follows Chase & Lev (SPAA 2005) in the weak-memory
//     formulation of Lê et al. (PPoPP 2013), but with the standalone
//     seq_cst fences replaced by seq_cst orderings on the participating
//     atomics. ThreadSanitizer does not model standalone fences, so the
//     fence-free variant keeps the TSan CI stage meaningful; the cost is a
//     full barrier on the owner's pop, which is noise next to task bodies
//     that each run thousands of simulated events.
//   * Elements must be trivially copyable (the pool stores Task pointers);
//     slots are std::atomic<T> so the speculative read in steal() is never
//     a torn read.
//   * The circular buffer grows by doubling. Retired buffers are kept
//     alive until the deque is destroyed because a lagging thief may still
//     read through a stale buffer pointer; for a pool-lifetime deque this
//     wastes at most the size of the second-largest buffer.
#pragma once

#include <atomic>
#include <cstddef>
#include <cstdint>
#include <memory>
#include <optional>
#include <type_traits>
#include <vector>

namespace rejuv::exec {

template <typename T>
class WorkStealingDeque {
  static_assert(std::is_trivially_copyable_v<T>,
                "deque elements are copied through atomic slots");

 public:
  explicit WorkStealingDeque(std::size_t initial_capacity = 64)
      : buffer_(new Buffer(round_up_pow2(initial_capacity))) {
    retired_.emplace_back(buffer_.load(std::memory_order_relaxed));
  }

  WorkStealingDeque(const WorkStealingDeque&) = delete;
  WorkStealingDeque& operator=(const WorkStealingDeque&) = delete;

  /// Owner only: push a task onto the bottom.
  void push(T item) {
    const std::int64_t b = bottom_.load(std::memory_order_relaxed);
    const std::int64_t t = top_.load(std::memory_order_acquire);
    Buffer* buffer = buffer_.load(std::memory_order_relaxed);
    if (b - t >= static_cast<std::int64_t>(buffer->capacity)) {
      buffer = grow(buffer, t, b);
    }
    buffer->put(b, item);
    bottom_.store(b + 1, std::memory_order_release);
  }

  /// Owner only: pop the most recently pushed task, LIFO.
  std::optional<T> pop() {
    const std::int64_t b = bottom_.load(std::memory_order_relaxed) - 1;
    Buffer* buffer = buffer_.load(std::memory_order_relaxed);
    // seq_cst store/load pair: the thief's top read and our bottom store
    // must be totally ordered, otherwise both sides could claim the last
    // element.
    bottom_.store(b, std::memory_order_seq_cst);
    std::int64_t t = top_.load(std::memory_order_seq_cst);
    if (t > b) {  // deque was empty
      bottom_.store(b + 1, std::memory_order_relaxed);
      return std::nullopt;
    }
    T item = buffer->get(b);
    if (t == b) {
      // Last element: race the thieves for it.
      if (!top_.compare_exchange_strong(t, t + 1, std::memory_order_seq_cst,
                                        std::memory_order_relaxed)) {
        bottom_.store(b + 1, std::memory_order_relaxed);
        return std::nullopt;  // a thief won
      }
      bottom_.store(b + 1, std::memory_order_relaxed);
    }
    return item;
  }

  /// Any thread: steal the oldest task, FIFO. Returns nullopt when the
  /// deque is empty or the steal lost a race (callers just move on to the
  /// next victim).
  std::optional<T> steal() {
    std::int64_t t = top_.load(std::memory_order_seq_cst);
    const std::int64_t b = bottom_.load(std::memory_order_seq_cst);
    if (t >= b) return std::nullopt;
    Buffer* buffer = buffer_.load(std::memory_order_acquire);
    T item = buffer->get(t);  // speculative; discarded if the CAS fails
    if (!top_.compare_exchange_strong(t, t + 1, std::memory_order_seq_cst,
                                      std::memory_order_relaxed)) {
      return std::nullopt;
    }
    return item;
  }

  /// Racy size estimate; good enough for "is there anything to steal".
  std::size_t size_estimate() const noexcept {
    const std::int64_t b = bottom_.load(std::memory_order_relaxed);
    const std::int64_t t = top_.load(std::memory_order_relaxed);
    return b > t ? static_cast<std::size_t>(b - t) : 0;
  }

 private:
  struct Buffer {
    explicit Buffer(std::size_t cap)
        : capacity(cap), mask(cap - 1), slots(new std::atomic<T>[cap]) {}
    void put(std::int64_t index, T item) noexcept {
      slots[static_cast<std::size_t>(index) & mask].store(item, std::memory_order_relaxed);
    }
    T get(std::int64_t index) const noexcept {
      return slots[static_cast<std::size_t>(index) & mask].load(std::memory_order_relaxed);
    }
    const std::size_t capacity;
    const std::size_t mask;
    std::unique_ptr<std::atomic<T>[]> slots;
  };

  static std::size_t round_up_pow2(std::size_t n) noexcept {
    std::size_t p = 8;
    while (p < n) p <<= 1;
    return p;
  }

  Buffer* grow(Buffer* old, std::int64_t t, std::int64_t b) {
    auto grown = std::make_unique<Buffer>(old->capacity * 2);
    for (std::int64_t i = t; i < b; ++i) grown->put(i, old->get(i));
    Buffer* raw = grown.get();
    retired_.emplace_back(std::move(grown));
    buffer_.store(raw, std::memory_order_release);
    return raw;
  }

  std::atomic<std::int64_t> top_{0};
  std::atomic<std::int64_t> bottom_{0};
  std::atomic<Buffer*> buffer_;
  // Owner-only: every buffer ever published, kept alive for lagging thieves.
  std::vector<std::unique_ptr<Buffer>> retired_;
};

}  // namespace rejuv::exec
