// Fixed-size work-stealing thread pool and fork/join task groups.
//
// The experiment harness fans a sweep out as (load point × replication)
// work items — up to a hundred independent simulations for the paper's
// full §5 protocol — and this pool is what runs them: a fixed set of
// workers, one Chase–Lev deque each, plus a mutex-guarded injection queue
// for tasks submitted from outside the pool. Tasks spawned from inside a
// worker go to that worker's own deque (LIFO, cache-hot); idle workers
// steal from the others (FIFO, oldest first).
//
// Determinism contract: the pool schedules, it never reorders results.
// TaskGroup/parallel_for_each/parallel_map run each index exactly once
// with no shared state of their own; parallel_map writes result i into
// slot i, so a reduction over the returned vector visits results in index
// order regardless of which worker ran what when. A deterministic task set
// therefore produces bit-identical reductions at any thread count,
// including 1 — the property the harness's REJUV_SEQUENTIAL cross-check
// and the parallel-sweep CI smoke pin down.
//
// Sizing: exactly one process-wide pool (shared()), sized from
// REJUV_THREADS or std::thread::hardware_concurrency(). Nested sweeps
// (figure binaries that call run_sweeps from several layers) reuse it, so
// wide sweeps can no longer oversubscribe the host the way per-point
// std::async did. Tests that need a specific size construct their own
// ThreadPool instances.
#pragma once

#include <atomic>
#include <condition_variable>
#include <cstddef>
#include <deque>
#include <exception>
#include <functional>
#include <memory>
#include <mutex>
#include <thread>
#include <vector>

#include "exec/work_stealing_deque.h"

namespace rejuv::exec {

class TaskGroup;

class ThreadPool {
 public:
  /// Starts exactly `threads` workers (>= 1).
  explicit ThreadPool(std::size_t threads);

  /// Joins all workers. All TaskGroups using this pool must have been
  /// waited; destroying a pool with tasks still queued is a logic error.
  ~ThreadPool();

  ThreadPool(const ThreadPool&) = delete;
  ThreadPool& operator=(const ThreadPool&) = delete;

  std::size_t thread_count() const noexcept { return workers_.size(); }

  /// Pool size the process-wide pool uses: REJUV_THREADS when set (>= 1),
  /// otherwise std::thread::hardware_concurrency() (>= 1).
  static std::size_t default_thread_count();

  /// Overrides the size of the not-yet-created shared pool (the --threads
  /// flag). Throws std::logic_error if the shared pool already exists with
  /// a different size; call before the first shared() use.
  static void configure_shared(std::size_t threads);

  /// The process-wide pool, created on first use.
  static ThreadPool& shared();

 private:
  friend class TaskGroup;

  struct Task {
    std::function<void()> fn;
    TaskGroup* group;
  };

  struct Worker {
    WorkStealingDeque<Task*> deque;
    std::thread thread;
  };

  void enqueue(Task* task);
  /// Claims and runs one task if any is visible. `self` is the calling
  /// worker's index in this pool, or npos for an external helper thread.
  bool run_one(std::size_t self);
  Task* take_task(std::size_t self);
  void worker_loop(std::size_t index);
  static void execute(Task* task);

  static constexpr std::size_t kExternal = static_cast<std::size_t>(-1);

  std::vector<std::unique_ptr<Worker>> workers_;
  std::mutex inject_mutex_;
  std::deque<Task*> inject_;
  std::atomic<std::int64_t> queued_{0};  ///< tasks enqueued but not yet claimed
  std::mutex sleep_mutex_;
  std::condition_variable sleep_cv_;
  std::atomic<bool> stop_{false};
  std::atomic<std::size_t> steal_seed_{0};
};

/// A fork/join scope: run() submits tasks, wait() blocks until every one
/// of them (including tasks they spawned into the same group) finished.
/// wait() does not idle — the waiting thread helps execute pool tasks, so
/// nested groups on a saturated pool cannot deadlock. The first exception
/// thrown by any task is captured and rethrown from wait(); later ones are
/// swallowed (their tasks still count as finished).
class TaskGroup {
 public:
  explicit TaskGroup(ThreadPool& pool = ThreadPool::shared()) : pool_(pool) {}

  /// Waits for stragglers; any pending exception is swallowed here, so
  /// call wait() explicitly on every non-error path.
  ~TaskGroup();

  TaskGroup(const TaskGroup&) = delete;
  TaskGroup& operator=(const TaskGroup&) = delete;

  /// Submits one task. May be called from inside a task of this group.
  void run(std::function<void()> fn);

  /// Blocks (helping) until all submitted tasks completed, then rethrows
  /// the first captured exception, if any. May be called repeatedly.
  void wait();

 private:
  friend class ThreadPool;

  void task_finished(std::exception_ptr error);

  ThreadPool& pool_;
  std::atomic<std::uint64_t> pending_{0};
  std::mutex mutex_;
  std::condition_variable cv_;
  std::exception_ptr error_;
};

/// Runs fn(0) ... fn(count - 1), each exactly once, in parallel on `pool`;
/// returns when all are done. Exceptions: first one rethrown.
void parallel_for_each(ThreadPool& pool, std::size_t count,
                       const std::function<void(std::size_t)>& fn);

/// Ordered parallel map: result i of fn(i) lands in slot i of the returned
/// vector, so reducing the vector front to back is a deterministic ordered
/// reduction no matter how the items were scheduled. Result must be
/// default-constructible and movable.
template <typename Result, typename Fn>
std::vector<Result> parallel_map(ThreadPool& pool, std::size_t count, Fn&& fn) {
  std::vector<Result> results(count);
  parallel_for_each(pool, count,
                    [&results, &fn](std::size_t index) { results[index] = fn(index); });
  return results;
}

}  // namespace rejuv::exec
