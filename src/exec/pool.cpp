#include "exec/pool.h"

#include "common/expect.h"
#include "common/flags.h"

namespace rejuv::exec {

namespace {

// Identifies the worker a thread belongs to, so tasks spawned from inside
// the pool go to the spawning worker's own deque.
thread_local ThreadPool* tl_pool = nullptr;
thread_local std::size_t tl_worker_index = 0;

std::size_t clamp_min_one(std::size_t n) { return n == 0 ? 1 : n; }

// configure_shared / shared handshake. The size is latched before the
// first shared() call; afterwards it is fixed for the process lifetime.
std::mutex g_shared_mutex;
std::size_t g_shared_threads = 0;  // 0 = not configured, use the default
bool g_shared_created = false;

}  // namespace

ThreadPool::ThreadPool(std::size_t threads) {
  REJUV_EXPECT(threads >= 1, "a thread pool needs at least one worker");
  workers_.reserve(threads);
  for (std::size_t i = 0; i < threads; ++i) workers_.push_back(std::make_unique<Worker>());
  for (std::size_t i = 0; i < threads; ++i) {
    workers_[i]->thread = std::thread([this, i] { worker_loop(i); });
  }
}

ThreadPool::~ThreadPool() {
  {
    std::lock_guard<std::mutex> lock(sleep_mutex_);
    stop_.store(true, std::memory_order_release);
  }
  sleep_cv_.notify_all();
  for (auto& worker : workers_) worker->thread.join();
}

std::size_t ThreadPool::default_thread_count() {
  const std::int64_t env = common::env_int("REJUV_THREADS", 0);
  if (env >= 1) return static_cast<std::size_t>(env);
  return clamp_min_one(std::thread::hardware_concurrency());
}

void ThreadPool::configure_shared(std::size_t threads) {
  REJUV_EXPECT(threads >= 1, "--threads must be at least 1");
  std::lock_guard<std::mutex> lock(g_shared_mutex);
  if (g_shared_created && g_shared_threads != threads) {
    throw std::logic_error("the shared thread pool is already running with " +
                           std::to_string(g_shared_threads) +
                           " threads; configure_shared must be called before first use");
  }
  g_shared_threads = threads;
}

ThreadPool& ThreadPool::shared() {
  // The latch under the mutex makes the (configure, create) pair atomic;
  // the static itself handles concurrent first calls.
  {
    std::lock_guard<std::mutex> lock(g_shared_mutex);
    if (!g_shared_created) {
      if (g_shared_threads == 0) g_shared_threads = default_thread_count();
      g_shared_created = true;
    }
  }
  static ThreadPool pool(g_shared_threads);
  return pool;
}

void ThreadPool::enqueue(Task* task) {
  queued_.fetch_add(1, std::memory_order_release);
  if (tl_pool == this) {
    workers_[tl_worker_index]->deque.push(task);
  } else {
    std::lock_guard<std::mutex> lock(inject_mutex_);
    inject_.push_back(task);
  }
  // Empty critical section: a worker that checked the predicate and is
  // about to sleep either saw the enqueue above or will see the notify.
  { std::lock_guard<std::mutex> lock(sleep_mutex_); }
  sleep_cv_.notify_one();
}

ThreadPool::Task* ThreadPool::take_task(std::size_t self) {
  if (self != kExternal) {
    if (auto task = workers_[self]->deque.pop()) {
      queued_.fetch_sub(1, std::memory_order_acq_rel);
      return *task;
    }
  }
  {
    std::lock_guard<std::mutex> lock(inject_mutex_);
    if (!inject_.empty()) {
      Task* task = inject_.front();
      inject_.pop_front();
      queued_.fetch_sub(1, std::memory_order_acq_rel);
      return task;
    }
  }
  // Two steal passes over the other workers, starting from a rotating
  // victim so thieves spread out instead of convoying on worker 0.
  const std::size_t n = workers_.size();
  const std::size_t start = steal_seed_.fetch_add(1, std::memory_order_relaxed);
  for (int pass = 0; pass < 2; ++pass) {
    for (std::size_t i = 0; i < n; ++i) {
      const std::size_t victim = (start + i) % n;
      if (victim == self) continue;
      if (auto task = workers_[victim]->deque.steal()) {
        queued_.fetch_sub(1, std::memory_order_acq_rel);
        return *task;
      }
    }
  }
  return nullptr;
}

void ThreadPool::execute(Task* task) {
  std::exception_ptr error;
  try {
    task->fn();
  } catch (...) {
    error = std::current_exception();
  }
  TaskGroup* group = task->group;
  delete task;
  group->task_finished(error);
}

bool ThreadPool::run_one(std::size_t self) {
  Task* task = take_task(self);
  if (task == nullptr) return false;
  execute(task);
  return true;
}

void ThreadPool::worker_loop(std::size_t index) {
  tl_pool = this;
  tl_worker_index = index;
  for (;;) {
    if (run_one(index)) continue;
    std::unique_lock<std::mutex> lock(sleep_mutex_);
    sleep_cv_.wait(lock, [this] {
      return stop_.load(std::memory_order_acquire) ||
             queued_.load(std::memory_order_acquire) > 0;
    });
    if (stop_.load(std::memory_order_acquire) &&
        queued_.load(std::memory_order_acquire) <= 0) {
      return;
    }
  }
}

TaskGroup::~TaskGroup() {
  try {
    wait();
  } catch (...) {
    // wait() on the normal path is the place to observe task errors.
  }
}

void TaskGroup::run(std::function<void()> fn) {
  pending_.fetch_add(1, std::memory_order_acq_rel);
  auto task = std::make_unique<ThreadPool::Task>();
  task->fn = std::move(fn);
  task->group = this;
  pool_.enqueue(task.release());
}

void TaskGroup::task_finished(std::exception_ptr error) {
  // The decrement and the notification both happen under the mutex: a
  // waiter can only observe pending == 0 under the same mutex, so it
  // cannot return (and destroy this group) while a completer is still
  // inside this function.
  std::lock_guard<std::mutex> lock(mutex_);
  if (error != nullptr && error_ == nullptr) error_ = error;
  if (pending_.fetch_sub(1, std::memory_order_acq_rel) == 1) cv_.notify_all();
}

void TaskGroup::wait() {
  const std::size_t self =
      tl_pool == &pool_ ? tl_worker_index : ThreadPool::kExternal;
  for (;;) {
    if (pending_.load(std::memory_order_acquire) == 0) break;
    if (pool_.run_one(self)) continue;
    // Nothing claimable: the group's unfinished tasks are mid-execution on
    // other threads (a task in some worker's deque always has an awake
    // owner that will pop it), so sleeping until the count reaches zero
    // cannot deadlock.
    std::unique_lock<std::mutex> lock(mutex_);
    cv_.wait(lock, [this] { return pending_.load(std::memory_order_acquire) == 0; });
    break;
  }
  std::exception_ptr error;
  {
    std::lock_guard<std::mutex> lock(mutex_);
    error = error_;
    error_ = nullptr;
  }
  if (error != nullptr) std::rethrow_exception(error);
}

void parallel_for_each(ThreadPool& pool, std::size_t count,
                       const std::function<void(std::size_t)>& fn) {
  if (count == 0) return;
  if (count == 1) {  // no point paying dispatch for a single item
    fn(0);
    return;
  }
  TaskGroup group(pool);
  for (std::size_t i = 0; i < count; ++i) {
    group.run([&fn, i] { fn(i); });
  }
  group.wait();
}

}  // namespace rejuv::exec
