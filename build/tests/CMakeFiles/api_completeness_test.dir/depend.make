# Empty dependencies file for api_completeness_test.
# This may be replaced when dependencies are built.
