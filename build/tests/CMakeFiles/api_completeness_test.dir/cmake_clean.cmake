file(REMOVE_RECURSE
  "CMakeFiles/api_completeness_test.dir/api_completeness_test.cpp.o"
  "CMakeFiles/api_completeness_test.dir/api_completeness_test.cpp.o.d"
  "api_completeness_test"
  "api_completeness_test.pdb"
  "api_completeness_test[1]_tests.cmake"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/api_completeness_test.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
