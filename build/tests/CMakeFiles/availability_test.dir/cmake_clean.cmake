file(REMOVE_RECURSE
  "CMakeFiles/availability_test.dir/availability_test.cpp.o"
  "CMakeFiles/availability_test.dir/availability_test.cpp.o.d"
  "availability_test"
  "availability_test.pdb"
  "availability_test[1]_tests.cmake"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/availability_test.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
