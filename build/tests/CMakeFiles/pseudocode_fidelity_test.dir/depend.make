# Empty dependencies file for pseudocode_fidelity_test.
# This may be replaced when dependencies are built.
