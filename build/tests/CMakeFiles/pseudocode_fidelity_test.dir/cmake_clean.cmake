file(REMOVE_RECURSE
  "CMakeFiles/pseudocode_fidelity_test.dir/pseudocode_fidelity_test.cpp.o"
  "CMakeFiles/pseudocode_fidelity_test.dir/pseudocode_fidelity_test.cpp.o.d"
  "pseudocode_fidelity_test"
  "pseudocode_fidelity_test.pdb"
  "pseudocode_fidelity_test[1]_tests.cmake"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/pseudocode_fidelity_test.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
