file(REMOVE_RECURSE
  "CMakeFiles/mmck_admission_test.dir/mmck_admission_test.cpp.o"
  "CMakeFiles/mmck_admission_test.dir/mmck_admission_test.cpp.o.d"
  "mmck_admission_test"
  "mmck_admission_test.pdb"
  "mmck_admission_test[1]_tests.cmake"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/mmck_admission_test.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
