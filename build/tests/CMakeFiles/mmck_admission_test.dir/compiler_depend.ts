# CMAKE generated file: DO NOT EDIT!
# Timestamp file for compiler generated dependencies management for mmck_admission_test.
