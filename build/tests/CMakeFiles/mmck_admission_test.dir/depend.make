# Empty dependencies file for mmck_admission_test.
# This may be replaced when dependencies are built.
