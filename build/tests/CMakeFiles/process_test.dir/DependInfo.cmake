
# Consider dependencies only in project.
set(CMAKE_DEPENDS_IN_PROJECT_ONLY OFF)

# The set of languages for which implicit dependencies are needed:
set(CMAKE_DEPENDS_LANGUAGES
  )

# The set of dependency files which are needed:
set(CMAKE_DEPENDS_DEPENDENCY_FILES
  "/root/repo/tests/process_test.cpp" "tests/CMakeFiles/process_test.dir/process_test.cpp.o" "gcc" "tests/CMakeFiles/process_test.dir/process_test.cpp.o.d"
  )

# Targets to which this target links.
set(CMAKE_TARGET_LINKED_INFO_FILES
  "/root/repo/build/src/harness/CMakeFiles/rejuv_harness.dir/DependInfo.cmake"
  "/root/repo/build/src/cluster/CMakeFiles/rejuv_cluster.dir/DependInfo.cmake"
  "/root/repo/build/src/availability/CMakeFiles/rejuv_availability.dir/DependInfo.cmake"
  "/root/repo/build/src/core/CMakeFiles/rejuv_core.dir/DependInfo.cmake"
  "/root/repo/build/src/model/CMakeFiles/rejuv_model.dir/DependInfo.cmake"
  "/root/repo/build/src/workload/CMakeFiles/rejuv_workload.dir/DependInfo.cmake"
  "/root/repo/build/src/sim/CMakeFiles/rejuv_sim.dir/DependInfo.cmake"
  "/root/repo/build/src/queueing/CMakeFiles/rejuv_queueing.dir/DependInfo.cmake"
  "/root/repo/build/src/markov/CMakeFiles/rejuv_markov.dir/DependInfo.cmake"
  "/root/repo/build/src/stats/CMakeFiles/rejuv_stats.dir/DependInfo.cmake"
  "/root/repo/build/src/common/CMakeFiles/rejuv_common.dir/DependInfo.cmake"
  )

# Fortran module output directory.
set(CMAKE_Fortran_TARGET_MODULE_DIR "")
