file(REMOVE_RECURSE
  "CMakeFiles/usage_accounting_test.dir/usage_accounting_test.cpp.o"
  "CMakeFiles/usage_accounting_test.dir/usage_accounting_test.cpp.o.d"
  "usage_accounting_test"
  "usage_accounting_test.pdb"
  "usage_accounting_test[1]_tests.cmake"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/usage_accounting_test.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
