# Empty compiler generated dependencies file for usage_accounting_test.
# This may be replaced when dependencies are built.
