file(REMOVE_RECURSE
  "CMakeFiles/core_controller_test.dir/core_controller_test.cpp.o"
  "CMakeFiles/core_controller_test.dir/core_controller_test.cpp.o.d"
  "core_controller_test"
  "core_controller_test.pdb"
  "core_controller_test[1]_tests.cmake"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/core_controller_test.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
