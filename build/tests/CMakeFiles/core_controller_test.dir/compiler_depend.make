# Empty compiler generated dependencies file for core_controller_test.
# This may be replaced when dependencies are built.
