# CMake generated Testfile for 
# Source directory: /root/repo/tests
# Build directory: /root/repo/build/tests
# 
# This file includes the relevant testing commands required for 
# testing this directory and lists subdirectories to be tested as well.
include("/root/repo/build/tests/api_completeness_test[1]_include.cmake")
include("/root/repo/build/tests/common_test[1]_include.cmake")
include("/root/repo/build/tests/stats_test[1]_include.cmake")
include("/root/repo/build/tests/p2_quantile_test[1]_include.cmake")
include("/root/repo/build/tests/ks_test_test[1]_include.cmake")
include("/root/repo/build/tests/markov_test[1]_include.cmake")
include("/root/repo/build/tests/queueing_test[1]_include.cmake")
include("/root/repo/build/tests/mmck_admission_test[1]_include.cmake")
include("/root/repo/build/tests/sim_test[1]_include.cmake")
include("/root/repo/build/tests/process_test[1]_include.cmake")
include("/root/repo/build/tests/core_detector_test[1]_include.cmake")
include("/root/repo/build/tests/pseudocode_fidelity_test[1]_include.cmake")
include("/root/repo/build/tests/core_controller_test[1]_include.cmake")
include("/root/repo/build/tests/model_test[1]_include.cmake")
include("/root/repo/build/tests/failure_injection_test[1]_include.cmake")
include("/root/repo/build/tests/usage_accounting_test[1]_include.cmake")
include("/root/repo/build/tests/extensions_test[1]_include.cmake")
include("/root/repo/build/tests/workload_test[1]_include.cmake")
include("/root/repo/build/tests/availability_test[1]_include.cmake")
include("/root/repo/build/tests/cluster_test[1]_include.cmake")
include("/root/repo/build/tests/harness_test[1]_include.cmake")
include("/root/repo/build/tests/integration_test[1]_include.cmake")
include("/root/repo/build/tests/crosscheck_test[1]_include.cmake")
