# CMake generated Testfile for 
# Source directory: /root/repo/examples
# Build directory: /root/repo/build/examples
# 
# This file includes the relevant testing commands required for 
# testing this directory and lists subdirectories to be tested as well.
add_test(example_quickstart "/root/repo/build/examples/quickstart")
set_tests_properties(example_quickstart PROPERTIES  TIMEOUT "120" _BACKTRACE_TRIPLES "/root/repo/examples/CMakeLists.txt;8;add_test;/root/repo/examples/CMakeLists.txt;12;rejuv_add_example;/root/repo/examples/CMakeLists.txt;0;")
add_test(example_ecommerce_rejuvenation "/root/repo/build/examples/ecommerce_rejuvenation")
set_tests_properties(example_ecommerce_rejuvenation PROPERTIES  TIMEOUT "120" _BACKTRACE_TRIPLES "/root/repo/examples/CMakeLists.txt;8;add_test;/root/repo/examples/CMakeLists.txt;13;rejuv_add_example;/root/repo/examples/CMakeLists.txt;0;")
add_test(example_capacity_planning "/root/repo/build/examples/capacity_planning")
set_tests_properties(example_capacity_planning PROPERTIES  TIMEOUT "120" _BACKTRACE_TRIPLES "/root/repo/examples/CMakeLists.txt;8;add_test;/root/repo/examples/CMakeLists.txt;14;rejuv_add_example;/root/repo/examples/CMakeLists.txt;0;")
add_test(example_adaptive_monitoring "/root/repo/build/examples/adaptive_monitoring")
set_tests_properties(example_adaptive_monitoring PROPERTIES  TIMEOUT "120" _BACKTRACE_TRIPLES "/root/repo/examples/CMakeLists.txt;8;add_test;/root/repo/examples/CMakeLists.txt;15;rejuv_add_example;/root/repo/examples/CMakeLists.txt;0;")
add_test(example_cluster_rolling_rejuvenation "/root/repo/build/examples/cluster_rolling_rejuvenation")
set_tests_properties(example_cluster_rolling_rejuvenation PROPERTIES  TIMEOUT "120" _BACKTRACE_TRIPLES "/root/repo/examples/CMakeLists.txt;8;add_test;/root/repo/examples/CMakeLists.txt;16;rejuv_add_example;/root/repo/examples/CMakeLists.txt;0;")
add_test(example_periodic_traffic "/root/repo/build/examples/periodic_traffic")
set_tests_properties(example_periodic_traffic PROPERTIES  TIMEOUT "120" _BACKTRACE_TRIPLES "/root/repo/examples/CMakeLists.txt;8;add_test;/root/repo/examples/CMakeLists.txt;17;rejuv_add_example;/root/repo/examples/CMakeLists.txt;0;")
add_test(example_multi_tier_pipeline "/root/repo/build/examples/multi_tier_pipeline")
set_tests_properties(example_multi_tier_pipeline PROPERTIES  TIMEOUT "120" _BACKTRACE_TRIPLES "/root/repo/examples/CMakeLists.txt;8;add_test;/root/repo/examples/CMakeLists.txt;18;rejuv_add_example;/root/repo/examples/CMakeLists.txt;0;")
add_test(example_soft_failure_postmortem "/root/repo/build/examples/soft_failure_postmortem")
set_tests_properties(example_soft_failure_postmortem PROPERTIES  TIMEOUT "120" _BACKTRACE_TRIPLES "/root/repo/examples/CMakeLists.txt;8;add_test;/root/repo/examples/CMakeLists.txt;19;rejuv_add_example;/root/repo/examples/CMakeLists.txt;0;")
