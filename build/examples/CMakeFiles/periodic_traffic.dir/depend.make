# Empty dependencies file for periodic_traffic.
# This may be replaced when dependencies are built.
