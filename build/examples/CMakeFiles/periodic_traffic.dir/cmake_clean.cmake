file(REMOVE_RECURSE
  "CMakeFiles/periodic_traffic.dir/periodic_traffic.cpp.o"
  "CMakeFiles/periodic_traffic.dir/periodic_traffic.cpp.o.d"
  "periodic_traffic"
  "periodic_traffic.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/periodic_traffic.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
