file(REMOVE_RECURSE
  "CMakeFiles/cluster_rolling_rejuvenation.dir/cluster_rolling_rejuvenation.cpp.o"
  "CMakeFiles/cluster_rolling_rejuvenation.dir/cluster_rolling_rejuvenation.cpp.o.d"
  "cluster_rolling_rejuvenation"
  "cluster_rolling_rejuvenation.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/cluster_rolling_rejuvenation.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
