# Empty dependencies file for cluster_rolling_rejuvenation.
# This may be replaced when dependencies are built.
