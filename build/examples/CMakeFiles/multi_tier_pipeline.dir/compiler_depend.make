# Empty compiler generated dependencies file for multi_tier_pipeline.
# This may be replaced when dependencies are built.
