file(REMOVE_RECURSE
  "CMakeFiles/multi_tier_pipeline.dir/multi_tier_pipeline.cpp.o"
  "CMakeFiles/multi_tier_pipeline.dir/multi_tier_pipeline.cpp.o.d"
  "multi_tier_pipeline"
  "multi_tier_pipeline.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/multi_tier_pipeline.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
