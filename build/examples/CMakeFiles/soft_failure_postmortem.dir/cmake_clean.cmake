file(REMOVE_RECURSE
  "CMakeFiles/soft_failure_postmortem.dir/soft_failure_postmortem.cpp.o"
  "CMakeFiles/soft_failure_postmortem.dir/soft_failure_postmortem.cpp.o.d"
  "soft_failure_postmortem"
  "soft_failure_postmortem.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/soft_failure_postmortem.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
