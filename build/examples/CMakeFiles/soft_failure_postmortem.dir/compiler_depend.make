# Empty compiler generated dependencies file for soft_failure_postmortem.
# This may be replaced when dependencies are built.
