# Empty compiler generated dependencies file for ecommerce_rejuvenation.
# This may be replaced when dependencies are built.
