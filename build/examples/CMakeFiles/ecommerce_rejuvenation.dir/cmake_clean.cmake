file(REMOVE_RECURSE
  "CMakeFiles/ecommerce_rejuvenation.dir/ecommerce_rejuvenation.cpp.o"
  "CMakeFiles/ecommerce_rejuvenation.dir/ecommerce_rejuvenation.cpp.o.d"
  "ecommerce_rejuvenation"
  "ecommerce_rejuvenation.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/ecommerce_rejuvenation.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
