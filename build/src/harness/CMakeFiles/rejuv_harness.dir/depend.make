# Empty dependencies file for rejuv_harness.
# This may be replaced when dependencies are built.
