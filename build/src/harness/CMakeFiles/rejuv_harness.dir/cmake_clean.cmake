file(REMOVE_RECURSE
  "CMakeFiles/rejuv_harness.dir/experiment.cpp.o"
  "CMakeFiles/rejuv_harness.dir/experiment.cpp.o.d"
  "CMakeFiles/rejuv_harness.dir/paper.cpp.o"
  "CMakeFiles/rejuv_harness.dir/paper.cpp.o.d"
  "CMakeFiles/rejuv_harness.dir/report.cpp.o"
  "CMakeFiles/rejuv_harness.dir/report.cpp.o.d"
  "librejuv_harness.a"
  "librejuv_harness.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/rejuv_harness.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
