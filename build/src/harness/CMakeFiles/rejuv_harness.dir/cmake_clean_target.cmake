file(REMOVE_RECURSE
  "librejuv_harness.a"
)
