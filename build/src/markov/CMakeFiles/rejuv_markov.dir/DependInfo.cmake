
# Consider dependencies only in project.
set(CMAKE_DEPENDS_IN_PROJECT_ONLY OFF)

# The set of languages for which implicit dependencies are needed:
set(CMAKE_DEPENDS_LANGUAGES
  )

# The set of dependency files which are needed:
set(CMAKE_DEPENDS_DEPENDENCY_FILES
  "/root/repo/src/markov/ctmc.cpp" "src/markov/CMakeFiles/rejuv_markov.dir/ctmc.cpp.o" "gcc" "src/markov/CMakeFiles/rejuv_markov.dir/ctmc.cpp.o.d"
  "/root/repo/src/markov/linalg.cpp" "src/markov/CMakeFiles/rejuv_markov.dir/linalg.cpp.o" "gcc" "src/markov/CMakeFiles/rejuv_markov.dir/linalg.cpp.o.d"
  "/root/repo/src/markov/phase_type.cpp" "src/markov/CMakeFiles/rejuv_markov.dir/phase_type.cpp.o" "gcc" "src/markov/CMakeFiles/rejuv_markov.dir/phase_type.cpp.o.d"
  "/root/repo/src/markov/sample_average.cpp" "src/markov/CMakeFiles/rejuv_markov.dir/sample_average.cpp.o" "gcc" "src/markov/CMakeFiles/rejuv_markov.dir/sample_average.cpp.o.d"
  "/root/repo/src/markov/stationary.cpp" "src/markov/CMakeFiles/rejuv_markov.dir/stationary.cpp.o" "gcc" "src/markov/CMakeFiles/rejuv_markov.dir/stationary.cpp.o.d"
  )

# Targets to which this target links.
set(CMAKE_TARGET_LINKED_INFO_FILES
  "/root/repo/build/src/common/CMakeFiles/rejuv_common.dir/DependInfo.cmake"
  "/root/repo/build/src/stats/CMakeFiles/rejuv_stats.dir/DependInfo.cmake"
  )

# Fortran module output directory.
set(CMAKE_Fortran_TARGET_MODULE_DIR "")
