# Empty dependencies file for rejuv_markov.
# This may be replaced when dependencies are built.
