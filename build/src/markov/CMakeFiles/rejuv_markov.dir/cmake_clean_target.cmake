file(REMOVE_RECURSE
  "librejuv_markov.a"
)
