file(REMOVE_RECURSE
  "CMakeFiles/rejuv_markov.dir/ctmc.cpp.o"
  "CMakeFiles/rejuv_markov.dir/ctmc.cpp.o.d"
  "CMakeFiles/rejuv_markov.dir/linalg.cpp.o"
  "CMakeFiles/rejuv_markov.dir/linalg.cpp.o.d"
  "CMakeFiles/rejuv_markov.dir/phase_type.cpp.o"
  "CMakeFiles/rejuv_markov.dir/phase_type.cpp.o.d"
  "CMakeFiles/rejuv_markov.dir/sample_average.cpp.o"
  "CMakeFiles/rejuv_markov.dir/sample_average.cpp.o.d"
  "CMakeFiles/rejuv_markov.dir/stationary.cpp.o"
  "CMakeFiles/rejuv_markov.dir/stationary.cpp.o.d"
  "librejuv_markov.a"
  "librejuv_markov.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/rejuv_markov.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
