file(REMOVE_RECURSE
  "librejuv_sim.a"
)
