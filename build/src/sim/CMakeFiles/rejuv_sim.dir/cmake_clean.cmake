file(REMOVE_RECURSE
  "CMakeFiles/rejuv_sim.dir/collector.cpp.o"
  "CMakeFiles/rejuv_sim.dir/collector.cpp.o.d"
  "CMakeFiles/rejuv_sim.dir/event_queue.cpp.o"
  "CMakeFiles/rejuv_sim.dir/event_queue.cpp.o.d"
  "CMakeFiles/rejuv_sim.dir/simulator.cpp.o"
  "CMakeFiles/rejuv_sim.dir/simulator.cpp.o.d"
  "librejuv_sim.a"
  "librejuv_sim.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/rejuv_sim.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
