# Empty compiler generated dependencies file for rejuv_sim.
# This may be replaced when dependencies are built.
