file(REMOVE_RECURSE
  "librejuv_workload.a"
)
