# Empty dependencies file for rejuv_workload.
# This may be replaced when dependencies are built.
