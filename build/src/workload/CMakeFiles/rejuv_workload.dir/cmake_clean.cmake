file(REMOVE_RECURSE
  "CMakeFiles/rejuv_workload.dir/arrival_process.cpp.o"
  "CMakeFiles/rejuv_workload.dir/arrival_process.cpp.o.d"
  "librejuv_workload.a"
  "librejuv_workload.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/rejuv_workload.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
