file(REMOVE_RECURSE
  "CMakeFiles/rejuv_queueing.dir/erlang.cpp.o"
  "CMakeFiles/rejuv_queueing.dir/erlang.cpp.o.d"
  "CMakeFiles/rejuv_queueing.dir/mmc.cpp.o"
  "CMakeFiles/rejuv_queueing.dir/mmc.cpp.o.d"
  "CMakeFiles/rejuv_queueing.dir/mmck.cpp.o"
  "CMakeFiles/rejuv_queueing.dir/mmck.cpp.o.d"
  "librejuv_queueing.a"
  "librejuv_queueing.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/rejuv_queueing.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
