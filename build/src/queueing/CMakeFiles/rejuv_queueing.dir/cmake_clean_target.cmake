file(REMOVE_RECURSE
  "librejuv_queueing.a"
)
