# Empty dependencies file for rejuv_queueing.
# This may be replaced when dependencies are built.
