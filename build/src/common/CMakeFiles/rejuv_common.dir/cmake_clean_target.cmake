file(REMOVE_RECURSE
  "librejuv_common.a"
)
