# Empty dependencies file for rejuv_common.
# This may be replaced when dependencies are built.
