file(REMOVE_RECURSE
  "CMakeFiles/rejuv_common.dir/flags.cpp.o"
  "CMakeFiles/rejuv_common.dir/flags.cpp.o.d"
  "CMakeFiles/rejuv_common.dir/rng.cpp.o"
  "CMakeFiles/rejuv_common.dir/rng.cpp.o.d"
  "CMakeFiles/rejuv_common.dir/table.cpp.o"
  "CMakeFiles/rejuv_common.dir/table.cpp.o.d"
  "librejuv_common.a"
  "librejuv_common.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/rejuv_common.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
