# Empty dependencies file for rejuv_availability.
# This may be replaced when dependencies are built.
