file(REMOVE_RECURSE
  "librejuv_availability.a"
)
