file(REMOVE_RECURSE
  "CMakeFiles/rejuv_availability.dir/huang_model.cpp.o"
  "CMakeFiles/rejuv_availability.dir/huang_model.cpp.o.d"
  "librejuv_availability.a"
  "librejuv_availability.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/rejuv_availability.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
