
# Consider dependencies only in project.
set(CMAKE_DEPENDS_IN_PROJECT_ONLY OFF)

# The set of languages for which implicit dependencies are needed:
set(CMAKE_DEPENDS_LANGUAGES
  )

# The set of dependency files which are needed:
set(CMAKE_DEPENDS_DEPENDENCY_FILES
  "/root/repo/src/availability/huang_model.cpp" "src/availability/CMakeFiles/rejuv_availability.dir/huang_model.cpp.o" "gcc" "src/availability/CMakeFiles/rejuv_availability.dir/huang_model.cpp.o.d"
  )

# Targets to which this target links.
set(CMAKE_TARGET_LINKED_INFO_FILES
  "/root/repo/build/src/common/CMakeFiles/rejuv_common.dir/DependInfo.cmake"
  "/root/repo/build/src/markov/CMakeFiles/rejuv_markov.dir/DependInfo.cmake"
  "/root/repo/build/src/stats/CMakeFiles/rejuv_stats.dir/DependInfo.cmake"
  )

# Fortran module output directory.
set(CMAKE_Fortran_TARGET_MODULE_DIR "")
