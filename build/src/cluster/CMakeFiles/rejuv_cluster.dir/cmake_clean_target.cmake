file(REMOVE_RECURSE
  "librejuv_cluster.a"
)
