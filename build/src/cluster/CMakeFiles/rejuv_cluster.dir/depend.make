# Empty dependencies file for rejuv_cluster.
# This may be replaced when dependencies are built.
