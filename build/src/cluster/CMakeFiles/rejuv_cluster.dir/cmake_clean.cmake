file(REMOVE_RECURSE
  "CMakeFiles/rejuv_cluster.dir/cluster.cpp.o"
  "CMakeFiles/rejuv_cluster.dir/cluster.cpp.o.d"
  "librejuv_cluster.a"
  "librejuv_cluster.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/rejuv_cluster.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
