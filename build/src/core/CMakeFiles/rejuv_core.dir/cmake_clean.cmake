file(REMOVE_RECURSE
  "CMakeFiles/rejuv_core.dir/baseline.cpp.o"
  "CMakeFiles/rejuv_core.dir/baseline.cpp.o.d"
  "CMakeFiles/rejuv_core.dir/bucket_cascade.cpp.o"
  "CMakeFiles/rejuv_core.dir/bucket_cascade.cpp.o.d"
  "CMakeFiles/rejuv_core.dir/clta.cpp.o"
  "CMakeFiles/rejuv_core.dir/clta.cpp.o.d"
  "CMakeFiles/rejuv_core.dir/controller.cpp.o"
  "CMakeFiles/rejuv_core.dir/controller.cpp.o.d"
  "CMakeFiles/rejuv_core.dir/extensions.cpp.o"
  "CMakeFiles/rejuv_core.dir/extensions.cpp.o.d"
  "CMakeFiles/rejuv_core.dir/factory.cpp.o"
  "CMakeFiles/rejuv_core.dir/factory.cpp.o.d"
  "CMakeFiles/rejuv_core.dir/saraa.cpp.o"
  "CMakeFiles/rejuv_core.dir/saraa.cpp.o.d"
  "CMakeFiles/rejuv_core.dir/sraa.cpp.o"
  "CMakeFiles/rejuv_core.dir/sraa.cpp.o.d"
  "CMakeFiles/rejuv_core.dir/static_rejuvenation.cpp.o"
  "CMakeFiles/rejuv_core.dir/static_rejuvenation.cpp.o.d"
  "librejuv_core.a"
  "librejuv_core.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/rejuv_core.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
