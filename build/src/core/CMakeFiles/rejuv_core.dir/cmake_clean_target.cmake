file(REMOVE_RECURSE
  "librejuv_core.a"
)
