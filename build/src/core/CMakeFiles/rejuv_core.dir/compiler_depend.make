# Empty compiler generated dependencies file for rejuv_core.
# This may be replaced when dependencies are built.
