
# Consider dependencies only in project.
set(CMAKE_DEPENDS_IN_PROJECT_ONLY OFF)

# The set of languages for which implicit dependencies are needed:
set(CMAKE_DEPENDS_LANGUAGES
  )

# The set of dependency files which are needed:
set(CMAKE_DEPENDS_DEPENDENCY_FILES
  "/root/repo/src/core/baseline.cpp" "src/core/CMakeFiles/rejuv_core.dir/baseline.cpp.o" "gcc" "src/core/CMakeFiles/rejuv_core.dir/baseline.cpp.o.d"
  "/root/repo/src/core/bucket_cascade.cpp" "src/core/CMakeFiles/rejuv_core.dir/bucket_cascade.cpp.o" "gcc" "src/core/CMakeFiles/rejuv_core.dir/bucket_cascade.cpp.o.d"
  "/root/repo/src/core/clta.cpp" "src/core/CMakeFiles/rejuv_core.dir/clta.cpp.o" "gcc" "src/core/CMakeFiles/rejuv_core.dir/clta.cpp.o.d"
  "/root/repo/src/core/controller.cpp" "src/core/CMakeFiles/rejuv_core.dir/controller.cpp.o" "gcc" "src/core/CMakeFiles/rejuv_core.dir/controller.cpp.o.d"
  "/root/repo/src/core/extensions.cpp" "src/core/CMakeFiles/rejuv_core.dir/extensions.cpp.o" "gcc" "src/core/CMakeFiles/rejuv_core.dir/extensions.cpp.o.d"
  "/root/repo/src/core/factory.cpp" "src/core/CMakeFiles/rejuv_core.dir/factory.cpp.o" "gcc" "src/core/CMakeFiles/rejuv_core.dir/factory.cpp.o.d"
  "/root/repo/src/core/saraa.cpp" "src/core/CMakeFiles/rejuv_core.dir/saraa.cpp.o" "gcc" "src/core/CMakeFiles/rejuv_core.dir/saraa.cpp.o.d"
  "/root/repo/src/core/sraa.cpp" "src/core/CMakeFiles/rejuv_core.dir/sraa.cpp.o" "gcc" "src/core/CMakeFiles/rejuv_core.dir/sraa.cpp.o.d"
  "/root/repo/src/core/static_rejuvenation.cpp" "src/core/CMakeFiles/rejuv_core.dir/static_rejuvenation.cpp.o" "gcc" "src/core/CMakeFiles/rejuv_core.dir/static_rejuvenation.cpp.o.d"
  )

# Targets to which this target links.
set(CMAKE_TARGET_LINKED_INFO_FILES
  "/root/repo/build/src/common/CMakeFiles/rejuv_common.dir/DependInfo.cmake"
  "/root/repo/build/src/stats/CMakeFiles/rejuv_stats.dir/DependInfo.cmake"
  )

# Fortran module output directory.
set(CMAKE_Fortran_TARGET_MODULE_DIR "")
