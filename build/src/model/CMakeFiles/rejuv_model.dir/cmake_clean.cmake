file(REMOVE_RECURSE
  "CMakeFiles/rejuv_model.dir/ecommerce.cpp.o"
  "CMakeFiles/rejuv_model.dir/ecommerce.cpp.o.d"
  "librejuv_model.a"
  "librejuv_model.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/rejuv_model.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
