file(REMOVE_RECURSE
  "librejuv_model.a"
)
