# Empty dependencies file for rejuv_model.
# This may be replaced when dependencies are built.
