# Empty compiler generated dependencies file for rejuv_stats.
# This may be replaced when dependencies are built.
