
# Consider dependencies only in project.
set(CMAKE_DEPENDS_IN_PROJECT_ONLY OFF)

# The set of languages for which implicit dependencies are needed:
set(CMAKE_DEPENDS_LANGUAGES
  )

# The set of dependency files which are needed:
set(CMAKE_DEPENDS_DEPENDENCY_FILES
  "/root/repo/src/stats/autocorrelation.cpp" "src/stats/CMakeFiles/rejuv_stats.dir/autocorrelation.cpp.o" "gcc" "src/stats/CMakeFiles/rejuv_stats.dir/autocorrelation.cpp.o.d"
  "/root/repo/src/stats/batch_means.cpp" "src/stats/CMakeFiles/rejuv_stats.dir/batch_means.cpp.o" "gcc" "src/stats/CMakeFiles/rejuv_stats.dir/batch_means.cpp.o.d"
  "/root/repo/src/stats/chi_squared.cpp" "src/stats/CMakeFiles/rejuv_stats.dir/chi_squared.cpp.o" "gcc" "src/stats/CMakeFiles/rejuv_stats.dir/chi_squared.cpp.o.d"
  "/root/repo/src/stats/histogram.cpp" "src/stats/CMakeFiles/rejuv_stats.dir/histogram.cpp.o" "gcc" "src/stats/CMakeFiles/rejuv_stats.dir/histogram.cpp.o.d"
  "/root/repo/src/stats/inference.cpp" "src/stats/CMakeFiles/rejuv_stats.dir/inference.cpp.o" "gcc" "src/stats/CMakeFiles/rejuv_stats.dir/inference.cpp.o.d"
  "/root/repo/src/stats/ks_test.cpp" "src/stats/CMakeFiles/rejuv_stats.dir/ks_test.cpp.o" "gcc" "src/stats/CMakeFiles/rejuv_stats.dir/ks_test.cpp.o.d"
  "/root/repo/src/stats/normal.cpp" "src/stats/CMakeFiles/rejuv_stats.dir/normal.cpp.o" "gcc" "src/stats/CMakeFiles/rejuv_stats.dir/normal.cpp.o.d"
  "/root/repo/src/stats/p2_quantile.cpp" "src/stats/CMakeFiles/rejuv_stats.dir/p2_quantile.cpp.o" "gcc" "src/stats/CMakeFiles/rejuv_stats.dir/p2_quantile.cpp.o.d"
  "/root/repo/src/stats/quantiles.cpp" "src/stats/CMakeFiles/rejuv_stats.dir/quantiles.cpp.o" "gcc" "src/stats/CMakeFiles/rejuv_stats.dir/quantiles.cpp.o.d"
  "/root/repo/src/stats/running_stats.cpp" "src/stats/CMakeFiles/rejuv_stats.dir/running_stats.cpp.o" "gcc" "src/stats/CMakeFiles/rejuv_stats.dir/running_stats.cpp.o.d"
  "/root/repo/src/stats/trend.cpp" "src/stats/CMakeFiles/rejuv_stats.dir/trend.cpp.o" "gcc" "src/stats/CMakeFiles/rejuv_stats.dir/trend.cpp.o.d"
  )

# Targets to which this target links.
set(CMAKE_TARGET_LINKED_INFO_FILES
  "/root/repo/build/src/common/CMakeFiles/rejuv_common.dir/DependInfo.cmake"
  )

# Fortran module output directory.
set(CMAKE_Fortran_TARGET_MODULE_DIR "")
