file(REMOVE_RECURSE
  "CMakeFiles/rejuv_stats.dir/autocorrelation.cpp.o"
  "CMakeFiles/rejuv_stats.dir/autocorrelation.cpp.o.d"
  "CMakeFiles/rejuv_stats.dir/batch_means.cpp.o"
  "CMakeFiles/rejuv_stats.dir/batch_means.cpp.o.d"
  "CMakeFiles/rejuv_stats.dir/chi_squared.cpp.o"
  "CMakeFiles/rejuv_stats.dir/chi_squared.cpp.o.d"
  "CMakeFiles/rejuv_stats.dir/histogram.cpp.o"
  "CMakeFiles/rejuv_stats.dir/histogram.cpp.o.d"
  "CMakeFiles/rejuv_stats.dir/inference.cpp.o"
  "CMakeFiles/rejuv_stats.dir/inference.cpp.o.d"
  "CMakeFiles/rejuv_stats.dir/ks_test.cpp.o"
  "CMakeFiles/rejuv_stats.dir/ks_test.cpp.o.d"
  "CMakeFiles/rejuv_stats.dir/normal.cpp.o"
  "CMakeFiles/rejuv_stats.dir/normal.cpp.o.d"
  "CMakeFiles/rejuv_stats.dir/p2_quantile.cpp.o"
  "CMakeFiles/rejuv_stats.dir/p2_quantile.cpp.o.d"
  "CMakeFiles/rejuv_stats.dir/quantiles.cpp.o"
  "CMakeFiles/rejuv_stats.dir/quantiles.cpp.o.d"
  "CMakeFiles/rejuv_stats.dir/running_stats.cpp.o"
  "CMakeFiles/rejuv_stats.dir/running_stats.cpp.o.d"
  "CMakeFiles/rejuv_stats.dir/trend.cpp.o"
  "CMakeFiles/rejuv_stats.dir/trend.cpp.o.d"
  "librejuv_stats.a"
  "librejuv_stats.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/rejuv_stats.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
