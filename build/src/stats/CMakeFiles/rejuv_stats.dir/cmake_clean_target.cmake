file(REMOVE_RECURSE
  "librejuv_stats.a"
)
