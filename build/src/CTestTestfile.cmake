# CMake generated Testfile for 
# Source directory: /root/repo/src
# Build directory: /root/repo/build/src
# 
# This file includes the relevant testing commands required for 
# testing this directory and lists subdirectories to be tested as well.
subdirs("common")
subdirs("stats")
subdirs("markov")
subdirs("queueing")
subdirs("availability")
subdirs("sim")
subdirs("workload")
subdirs("model")
subdirs("core")
subdirs("cluster")
subdirs("harness")
