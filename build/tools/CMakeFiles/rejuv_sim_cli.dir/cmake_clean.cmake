file(REMOVE_RECURSE
  "CMakeFiles/rejuv_sim_cli.dir/rejuv_sim.cpp.o"
  "CMakeFiles/rejuv_sim_cli.dir/rejuv_sim.cpp.o.d"
  "rejuv-sim"
  "rejuv-sim.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/rejuv_sim_cli.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
