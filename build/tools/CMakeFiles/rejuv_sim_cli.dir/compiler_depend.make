# Empty compiler generated dependencies file for rejuv_sim_cli.
# This may be replaced when dependencies are built.
