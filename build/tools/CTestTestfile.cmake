# CMake generated Testfile for 
# Source directory: /root/repo/tools
# Build directory: /root/repo/build/tools
# 
# This file includes the relevant testing commands required for 
# testing this directory and lists subdirectories to be tested as well.
add_test(tool_rejuv_sim_saraa "/root/repo/build/tools/rejuv-sim" "--algorithm=saraa" "--loads=0.5,9" "--txns=2000" "--reps=1")
set_tests_properties(tool_rejuv_sim_saraa PROPERTIES  _BACKTRACE_TRIPLES "/root/repo/tools/CMakeLists.txt;14;add_test;/root/repo/tools/CMakeLists.txt;0;")
add_test(tool_rejuv_sim_clta_mmpp "/root/repo/build/tools/rejuv-sim" "--algorithm=clta" "--n=30" "--arrival=mmpp" "--loads=5" "--txns=2000")
set_tests_properties(tool_rejuv_sim_clta_mmpp PROPERTIES  _BACKTRACE_TRIPLES "/root/repo/tools/CMakeLists.txt;16;add_test;/root/repo/tools/CMakeLists.txt;0;")
add_test(tool_rejuv_sim_calibrate "/root/repo/build/tools/rejuv-sim" "--algorithm=sraa" "--calibrate=500" "--loads=2" "--txns=3000" "--reps=1")
set_tests_properties(tool_rejuv_sim_calibrate PROPERTIES  _BACKTRACE_TRIPLES "/root/repo/tools/CMakeLists.txt;18;add_test;/root/repo/tools/CMakeLists.txt;0;")
add_test(tool_rejuv_sim_extensions "/root/repo/build/tools/rejuv-sim" "--algorithm=bobbio-risk" "--threshold=20" "--loads=2" "--txns=2000" "--reps=1")
set_tests_properties(tool_rejuv_sim_extensions PROPERTIES  _BACKTRACE_TRIPLES "/root/repo/tools/CMakeLists.txt;20;add_test;/root/repo/tools/CMakeLists.txt;0;")
add_test(tool_rejuv_sim_rejects_unknown_algorithm "/root/repo/build/tools/rejuv-sim" "--algorithm=nonsense")
set_tests_properties(tool_rejuv_sim_rejects_unknown_algorithm PROPERTIES  WILL_FAIL "TRUE" _BACKTRACE_TRIPLES "/root/repo/tools/CMakeLists.txt;23;add_test;/root/repo/tools/CMakeLists.txt;0;")
add_test(tool_rejuv_sim_rejects_bad_flag "/root/repo/build/tools/rejuv-sim" "positional")
set_tests_properties(tool_rejuv_sim_rejects_bad_flag PROPERTIES  WILL_FAIL "TRUE" _BACKTRACE_TRIPLES "/root/repo/tools/CMakeLists.txt;26;add_test;/root/repo/tools/CMakeLists.txt;0;")
