# Empty dependencies file for fig14_sraa_buckets_doubled.
# This may be replaced when dependencies are built.
