file(REMOVE_RECURSE
  "../bench/fig14_sraa_buckets_doubled"
  "../bench/fig14_sraa_buckets_doubled.pdb"
  "CMakeFiles/fig14_sraa_buckets_doubled.dir/fig14_sraa_buckets_doubled.cpp.o"
  "CMakeFiles/fig14_sraa_buckets_doubled.dir/fig14_sraa_buckets_doubled.cpp.o.d"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/fig14_sraa_buckets_doubled.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
