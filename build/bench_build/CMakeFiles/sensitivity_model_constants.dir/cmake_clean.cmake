file(REMOVE_RECURSE
  "../bench/sensitivity_model_constants"
  "../bench/sensitivity_model_constants.pdb"
  "CMakeFiles/sensitivity_model_constants.dir/sensitivity_model_constants.cpp.o"
  "CMakeFiles/sensitivity_model_constants.dir/sensitivity_model_constants.cpp.o.d"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/sensitivity_model_constants.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
