# Empty dependencies file for sensitivity_model_constants.
# This may be replaced when dependencies are built.
