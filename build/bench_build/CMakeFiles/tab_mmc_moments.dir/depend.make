# Empty dependencies file for tab_mmc_moments.
# This may be replaced when dependencies are built.
