file(REMOVE_RECURSE
  "../bench/tab_mmc_moments"
  "../bench/tab_mmc_moments.pdb"
  "CMakeFiles/tab_mmc_moments.dir/tab_mmc_moments.cpp.o"
  "CMakeFiles/tab_mmc_moments.dir/tab_mmc_moments.cpp.o.d"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/tab_mmc_moments.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
