# Empty dependencies file for cluster_strategies.
# This may be replaced when dependencies are built.
