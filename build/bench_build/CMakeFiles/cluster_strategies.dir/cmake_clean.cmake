file(REMOVE_RECURSE
  "../bench/cluster_strategies"
  "../bench/cluster_strategies.pdb"
  "CMakeFiles/cluster_strategies.dir/cluster_strategies.cpp.o"
  "CMakeFiles/cluster_strategies.dir/cluster_strategies.cpp.o.d"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/cluster_strategies.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
