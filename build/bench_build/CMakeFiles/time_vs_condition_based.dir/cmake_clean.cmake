file(REMOVE_RECURSE
  "../bench/time_vs_condition_based"
  "../bench/time_vs_condition_based.pdb"
  "CMakeFiles/time_vs_condition_based.dir/time_vs_condition_based.cpp.o"
  "CMakeFiles/time_vs_condition_based.dir/time_vs_condition_based.cpp.o.d"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/time_vs_condition_based.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
