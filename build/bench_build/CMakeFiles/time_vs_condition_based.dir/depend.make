# Empty dependencies file for time_vs_condition_based.
# This may be replaced when dependencies are built.
