file(REMOVE_RECURSE
  "../bench/burst_vs_aging"
  "../bench/burst_vs_aging.pdb"
  "CMakeFiles/burst_vs_aging.dir/burst_vs_aging.cpp.o"
  "CMakeFiles/burst_vs_aging.dir/burst_vs_aging.cpp.o.d"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/burst_vs_aging.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
