# Empty compiler generated dependencies file for burst_vs_aging.
# This may be replaced when dependencies are built.
