# Empty dependencies file for micro_detectors.
# This may be replaced when dependencies are built.
