file(REMOVE_RECURSE
  "../bench/micro_detectors"
  "../bench/micro_detectors.pdb"
  "CMakeFiles/micro_detectors.dir/micro_detectors.cpp.o"
  "CMakeFiles/micro_detectors.dir/micro_detectors.cpp.o.d"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/micro_detectors.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
