# Empty compiler generated dependencies file for related_work_comparison.
# This may be replaced when dependencies are built.
