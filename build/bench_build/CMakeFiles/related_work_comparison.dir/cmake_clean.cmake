file(REMOVE_RECURSE
  "../bench/related_work_comparison"
  "../bench/related_work_comparison.pdb"
  "CMakeFiles/related_work_comparison.dir/related_work_comparison.cpp.o"
  "CMakeFiles/related_work_comparison.dir/related_work_comparison.cpp.o.d"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/related_work_comparison.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
