file(REMOVE_RECURSE
  "../bench/admission_vs_rejuvenation"
  "../bench/admission_vs_rejuvenation.pdb"
  "CMakeFiles/admission_vs_rejuvenation.dir/admission_vs_rejuvenation.cpp.o"
  "CMakeFiles/admission_vs_rejuvenation.dir/admission_vs_rejuvenation.cpp.o.d"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/admission_vs_rejuvenation.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
