# Empty dependencies file for admission_vs_rejuvenation.
# This may be replaced when dependencies are built.
