# Empty dependencies file for verify_reproduction.
# This may be replaced when dependencies are built.
