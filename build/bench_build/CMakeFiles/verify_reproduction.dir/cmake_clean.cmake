file(REMOVE_RECURSE
  "../bench/verify_reproduction"
  "../bench/verify_reproduction.pdb"
  "CMakeFiles/verify_reproduction.dir/verify_reproduction.cpp.o"
  "CMakeFiles/verify_reproduction.dir/verify_reproduction.cpp.o.d"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/verify_reproduction.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
