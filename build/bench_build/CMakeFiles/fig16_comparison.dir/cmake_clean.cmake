file(REMOVE_RECURSE
  "../bench/fig16_comparison"
  "../bench/fig16_comparison.pdb"
  "CMakeFiles/fig16_comparison.dir/fig16_comparison.cpp.o"
  "CMakeFiles/fig16_comparison.dir/fig16_comparison.cpp.o.d"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/fig16_comparison.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
