# Empty compiler generated dependencies file for fig16_comparison.
# This may be replaced when dependencies are built.
