# Empty dependencies file for tab_false_alarm.
# This may be replaced when dependencies are built.
