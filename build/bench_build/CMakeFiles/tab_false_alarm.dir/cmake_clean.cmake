file(REMOVE_RECURSE
  "../bench/tab_false_alarm"
  "../bench/tab_false_alarm.pdb"
  "CMakeFiles/tab_false_alarm.dir/tab_false_alarm.cpp.o"
  "CMakeFiles/tab_false_alarm.dir/tab_false_alarm.cpp.o.d"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/tab_false_alarm.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
