# Empty compiler generated dependencies file for fig11_sraa_sample_doubled.
# This may be replaced when dependencies are built.
