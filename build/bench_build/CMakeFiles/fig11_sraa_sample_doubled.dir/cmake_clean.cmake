file(REMOVE_RECURSE
  "../bench/fig11_sraa_sample_doubled"
  "../bench/fig11_sraa_sample_doubled.pdb"
  "CMakeFiles/fig11_sraa_sample_doubled.dir/fig11_sraa_sample_doubled.cpp.o"
  "CMakeFiles/fig11_sraa_sample_doubled.dir/fig11_sraa_sample_doubled.cpp.o.d"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/fig11_sraa_sample_doubled.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
