file(REMOVE_RECURSE
  "../bench/tab_autocorrelation"
  "../bench/tab_autocorrelation.pdb"
  "CMakeFiles/tab_autocorrelation.dir/tab_autocorrelation.cpp.o"
  "CMakeFiles/tab_autocorrelation.dir/tab_autocorrelation.cpp.o.d"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/tab_autocorrelation.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
