# Empty compiler generated dependencies file for tab_autocorrelation.
# This may be replaced when dependencies are built.
