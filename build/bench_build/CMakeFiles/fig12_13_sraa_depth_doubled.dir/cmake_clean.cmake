file(REMOVE_RECURSE
  "../bench/fig12_13_sraa_depth_doubled"
  "../bench/fig12_13_sraa_depth_doubled.pdb"
  "CMakeFiles/fig12_13_sraa_depth_doubled.dir/fig12_13_sraa_depth_doubled.cpp.o"
  "CMakeFiles/fig12_13_sraa_depth_doubled.dir/fig12_13_sraa_depth_doubled.cpp.o.d"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/fig12_13_sraa_depth_doubled.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
