# Empty compiler generated dependencies file for fig12_13_sraa_depth_doubled.
# This may be replaced when dependencies are built.
