# Empty dependencies file for fig05_sample_average_density.
# This may be replaced when dependencies are built.
