file(REMOVE_RECURSE
  "../bench/fig05_sample_average_density"
  "../bench/fig05_sample_average_density.pdb"
  "CMakeFiles/fig05_sample_average_density.dir/fig05_sample_average_density.cpp.o"
  "CMakeFiles/fig05_sample_average_density.dir/fig05_sample_average_density.cpp.o.d"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/fig05_sample_average_density.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
