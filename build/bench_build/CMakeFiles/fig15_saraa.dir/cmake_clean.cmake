file(REMOVE_RECURSE
  "../bench/fig15_saraa"
  "../bench/fig15_saraa.pdb"
  "CMakeFiles/fig15_saraa.dir/fig15_saraa.cpp.o"
  "CMakeFiles/fig15_saraa.dir/fig15_saraa.cpp.o.d"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/fig15_saraa.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
