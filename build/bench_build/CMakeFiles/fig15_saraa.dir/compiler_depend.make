# Empty compiler generated dependencies file for fig15_saraa.
# This may be replaced when dependencies are built.
