file(REMOVE_RECURSE
  "../bench/fig09_10_sraa_nkd15"
  "../bench/fig09_10_sraa_nkd15.pdb"
  "CMakeFiles/fig09_10_sraa_nkd15.dir/fig09_10_sraa_nkd15.cpp.o"
  "CMakeFiles/fig09_10_sraa_nkd15.dir/fig09_10_sraa_nkd15.cpp.o.d"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/fig09_10_sraa_nkd15.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
