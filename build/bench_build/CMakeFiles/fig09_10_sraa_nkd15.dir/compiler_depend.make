# Empty compiler generated dependencies file for fig09_10_sraa_nkd15.
# This may be replaced when dependencies are built.
